"""Cross-cutting outliner invariants on real workload builds."""

from __future__ import annotations

import pytest

from repro.compiler import RelocKind, dex2oat
from repro.core import compile_stage, outline_stage, select_candidates
from repro.core.benefit import evaluate
from repro.core.outline import outline_group


@pytest.fixture(scope="module")
def result(small_app):
    compiled = dex2oat(small_app.dexfile, cto=True)
    selection = select_candidates(compiled.methods)
    return outline_group(selection.candidates), selection


def test_every_outlined_function_called_at_least_twice(result):
    """An outlined function with fewer than two call sites could never
    have passed the benefit model."""
    group, selection = result
    call_counts: dict[str, int] = {}
    for method in group.rewritten.values():
        for reloc in method.relocations:
            if reloc.kind == RelocKind.CALL26 and reloc.symbol.startswith("MethodOutliner"):
                call_counts[reloc.symbol] = call_counts.get(reloc.symbol, 0) + 1
    assert set(call_counts) == {f.name for f in group.outlined}
    for fn in group.decisions:
        assert call_counts[fn.name] == len(fn.occurrences) >= 2


def test_every_decision_is_profitable(result):
    group, _ = result
    for fn in group.decisions:
        assert evaluate(fn.length, len(fn.occurrences)) >= 1


def test_occurrences_disjoint_within_method(result):
    group, _ = result
    by_method: dict[int, list[tuple[int, int]]] = {}
    for fn in group.decisions:
        for mi, off in fn.occurrences:
            by_method.setdefault(mi, []).append((off, off + 4 * fn.length))
    for spans in by_method.values():
        spans.sort()
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert e0 <= s1, "outlined regions overlap"


def test_rewritten_metadata_consistent(result):
    group, _ = result
    for method in group.rewritten.values():
        meta = method.metadata
        assert meta.code_size == len(method.code)
        for t in meta.terminators:
            assert 0 <= t < meta.code_size
        for ref in meta.pc_relative:
            assert 0 <= ref.offset < meta.code_size
            assert 0 <= ref.target <= meta.code_size
        for extent in meta.embedded_data:
            assert extent.end <= meta.code_size


def test_outlined_words_match_an_occurrence(result, small_app):
    """The outlined body must be byte-identical to what was removed."""
    group, selection = result
    original = {index: method for index, method in selection.candidates}
    for fn in group.decisions:
        mi, off = fn.occurrences[0]
        source = original[mi].code[off : off + 4 * fn.length]
        body = b"".join(w.to_bytes(4, "little") for w in fn.words)
        assert source == body


def test_staged_hot_filter(small_app):
    from repro.core.hotfilter import HotFunctionFilter

    package = compile_stage(small_app.dexfile)
    # Mark every generated method hot: only slowpaths stay outlinable.
    profile = {m.name: 1 for m in package.methods if not m.name.startswith("__cto")}
    hot = HotFunctionFilter.from_profile(profile, coverage=1.0)
    protected = outline_stage(package, hot_filter=hot)
    free = outline_stage(package)
    assert protected.text_size >= free.text_size
    assert protected.annotations["outline"]["hot_filtered"] == len(profile)
