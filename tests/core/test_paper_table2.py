"""Replay of the paper's Table 2 worked example, end to end.

Code 1 (original)::

    0x138320: cbz w0, #+0xc (addr 0x13832c)
    0x138324: ldr w2, [x0]        <- outlined
    0x138328: cmp w2, w1          <- outlined
    0x13832c: mov x3, x4
    0x138330: ldr x3, [x0]

Code 2 (outlined function): ldr w2, [x0]; cmp w2, w1; br x30
Code 4 (patched): the cbz offset shrinks from +0xc to +0x8.
"""

from __future__ import annotations

from repro.compiler.compiled import CompiledMethod, RelocKind
from repro.core.metadata import MethodMetadata, PcRelativeRef
from repro.core.outline import outline_group
from repro.isa import asm, decode_all, disassemble, encode_all, instructions as ins


def _table2_method() -> CompiledMethod:
    body = [
        ins.Cbz(rt=0, offset=0xC, sf=False),
        ins.LoadStoreImm(op="ldr", rt=2, rn=0, offset=0, size=4),
        ins.AddSubReg(op="sub", rd=31, rn=2, rm=1, set_flags=True, sf=False),  # cmp w2, w1
        asm.mov(3, 4),
        ins.LoadStoreImm(op="ldr", rt=3, rn=0, offset=0, size=8),
        ins.Ret(),
    ]
    code = encode_all(body)
    meta = MethodMetadata(
        method_name="table2",
        code_size=len(code),
        pc_relative=[PcRelativeRef(offset=0, target=0xC)],
        terminators=[0, len(code) - 4],
    )
    return CompiledMethod(name="table2", code=code, metadata=meta)


def _second_occurrence() -> CompiledMethod:
    """A second method containing the same two-instruction pair three
    more times (Table 2 shows one site; by the Fig. 2 model a length-2
    sequence needs four occurrences before outlining pays off)."""
    pair = [
        ins.LoadStoreImm(op="ldr", rt=2, rn=0, offset=0, size=4),
        ins.AddSubReg(op="sub", rd=31, rn=2, rm=1, set_flags=True, sf=False),
    ]
    body = pair * 3 + [ins.Ret()]
    code = encode_all(body)
    meta = MethodMetadata(
        method_name="other", code_size=len(code), terminators=[len(code) - 4]
    )
    return CompiledMethod(name="other", code=code, metadata=meta)


def test_table2_outline_and_patch():
    m1 = _table2_method()
    m2 = _second_occurrence()
    result = outline_group([(0, m1), (1, m2)], min_length=2, min_saved=1)
    assert result.stats.repeats_outlined == 1
    outlined = result.outlined[0]

    # Code 2: the outlined function is the pair plus `br x30`.
    out_instrs = decode_all(outlined.code)
    assert isinstance(out_instrs[0], ins.LoadStoreImm) and out_instrs[0].size == 4
    assert isinstance(out_instrs[1], ins.AddSubReg) and out_instrs[1].set_flags
    assert isinstance(out_instrs[2], ins.Br) and out_instrs[2].rn == 30

    # Codes 3+4: the caller shrank by one word and the cbz was re-patched
    # from +0xc to +0x8.
    new_m1 = result.rewritten[0]
    new_instrs = decode_all(new_m1.code)
    assert len(new_instrs) == len(decode_all(m1.code)) - 1
    cbz = new_instrs[0]
    assert isinstance(cbz, ins.Cbz)
    assert cbz.offset == 0x8  # was 0xc — exactly the paper's patch
    assert isinstance(new_instrs[1], ins.Bl)
    # the bl carries a relocation to the outlined function, not a target
    reloc = next(r for r in new_m1.relocations if r.kind == RelocKind.CALL26)
    assert reloc.offset == 4 and reloc.symbol == outlined.name

    # The paper's rendering reproduces:
    lines = disassemble(new_m1.code, 0x138320)
    assert lines[0] == "0x138320: cbz w0, #+0x8 (addr 0x138328)"


def test_table2_metadata_remapped():
    m1 = _table2_method()
    m2 = _second_occurrence()
    result = outline_group([(0, m1), (1, m2)], min_length=2, min_saved=1)
    new_meta = result.rewritten[0].metadata
    assert new_meta.code_size == len(result.rewritten[0].code)
    (ref,) = new_meta.pc_relative
    assert ref.offset == 0 and ref.target == 0x8
    # the ret terminator moved up by 4 bytes
    assert new_meta.terminators == [0, new_meta.code_size - 4]
