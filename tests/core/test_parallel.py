"""PlOpti (§3.4.1): partitioned outlining."""

from __future__ import annotations

import pytest

from repro import observability as obs
from repro.compiler import dex2oat
from repro.core.candidates import select_candidates
from repro.core.parallel import outline_partitioned
from repro.suffixtree.parallel import available_parallelism


@pytest.fixture(scope="module")
def candidates(small_app):
    return select_candidates(dex2oat(small_app.dexfile, cto=True).methods).candidates


def test_groups_1_equals_global_tree(candidates):
    single = outline_partitioned(candidates, groups=1)
    assert len(single.group_stats) == 1
    assert single.total_outlined_functions == single.group_stats[0].repeats_outlined


def test_partitioning_loses_some_reduction(candidates):
    """The paper's trade-off: K small trees find less cross-group
    redundancy than one global tree (Table 4: 19.19% → 16.40%)."""
    single = outline_partitioned(candidates, groups=1)
    parted = outline_partitioned(candidates, groups=8)
    saved_single = sum(s.instructions_saved for s in single.group_stats)
    saved_parted = sum(s.instructions_saved for s in parted.group_stats)
    assert saved_parted <= saved_single
    assert saved_parted > 0


def test_groups_cover_all_candidates(candidates):
    parted = outline_partitioned(candidates, groups=4)
    assert sum(s.candidate_methods for s in parted.group_stats) == len(candidates)


def test_outlined_names_unique_across_groups(candidates):
    parted = outline_partitioned(candidates, groups=4)
    names = [f.name for f in parted.outlined]
    assert len(names) == len(set(names))


def test_deterministic_for_seed(candidates):
    a = outline_partitioned(candidates, groups=4, seed=3)
    b = outline_partitioned(candidates, groups=4, seed=3)
    assert [f.name for f in a.outlined] == [f.name for f in b.outlined]
    assert {i: m.code for i, m in a.rewritten.items()} == {
        i: m.code for i, m in b.rewritten.items()
    }


def test_rewritten_indices_disjoint_across_groups(candidates):
    parted = outline_partitioned(candidates, groups=4)
    # each method index rewritten at most once (methods live in exactly
    # one group)
    assert len(parted.rewritten) <= len(candidates)


def test_invalid_groups_rejected(candidates):
    with pytest.raises(ValueError):
        outline_partitioned(candidates, groups=0)


def test_explicit_jobs_clamped_to_cpus_and_groups(candidates):
    """Regression (PR 5): the CPU clamp used to apply only when ``jobs``
    was defaulted — an explicit ``jobs=64`` on a small host scheduled 64
    workers.  Now every jobs value is clamped to
    ``min(jobs, groups, available_parallelism())`` and the ``plopti.jobs``
    gauge records the clamped truth."""
    expected = min(64, 4, available_parallelism())
    with obs.tracing() as tracer:
        oversubscribed = outline_partitioned(candidates, groups=4, jobs=64)
    assert tracer.gauges["plopti.jobs"] == expected
    # The clamp is scheduling-only: the outcome matches the unclamped ask.
    baseline = outline_partitioned(candidates, groups=4)
    assert [f.name for f in oversubscribed.outlined] == [
        f.name for f in baseline.outlined
    ]
    # jobs can never exceed the group count either.
    with obs.tracing() as tracer:
        outline_partitioned(candidates, groups=2, jobs=3)
    assert tracer.gauges["plopti.jobs"] == min(3, 2, available_parallelism())


def test_smaller_trees_per_group(candidates):
    single = outline_partitioned(candidates, groups=1)
    parted = outline_partitioned(candidates, groups=8)
    biggest_group_tree = max(s.tree_nodes for s in parted.group_stats)
    assert biggest_group_tree < single.group_stats[0].tree_nodes
