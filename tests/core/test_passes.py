"""The SizePass registry and the config's pass-pipeline surface."""

from __future__ import annotations

import pytest

from repro.core import CalibroConfig, build_app
from repro.core.errors import ConfigError
from repro.core.passes import (
    PASSES,
    MergePass,
    OutlinePass,
    PassContext,
    PassState,
    SizePass,
    get_pass,
    pass_names,
    register_pass,
)


class TestRegistry:
    def test_builtin_passes_satisfy_the_protocol(self):
        for name in pass_names():
            instance = get_pass(name)
            assert isinstance(instance, SizePass)
            assert instance.name == name
            assert instance.phase

    def test_registry_order_is_pipeline_order(self):
        assert pass_names() == ("outline", "merge")
        assert PASSES["outline"] is OutlinePass
        assert PASSES["merge"] is MergePass

    def test_unknown_pass_name_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown size pass"):
            get_pass("shrinkwrap")

    def test_register_pass_extends_the_registry(self):
        @register_pass
        class NoopPass:
            name = "noop-test-pass"
            phase = "noop"

            def run(self, state, config, context):
                pass

        try:
            assert isinstance(get_pass("noop-test-pass"), SizePass)
            config = CalibroConfig(size_passes=("noop-test-pass",))
            assert config.passes == ("noop-test-pass",)
        finally:
            del PASSES["noop-test-pass"]

    def test_register_pass_requires_a_name(self):
        class Nameless:
            phase = "x"

        with pytest.raises(ConfigError, match="name"):
            register_pass(Nameless)


class TestConfigPassList:
    def test_derived_pass_lists(self):
        assert CalibroConfig.baseline().passes == ()
        assert CalibroConfig.cto().passes == ()
        assert CalibroConfig.cto_ltbo().passes == ("outline",)
        assert CalibroConfig.cto_ltbo_plopti(2).with_merging().passes == (
            "outline",
            "merge",
        )

    def test_merging_alone_runs_only_the_merge_pass(self):
        assert CalibroConfig(merging=True).passes == ("merge",)

    def test_size_passes_overrides_the_derived_list(self):
        config = CalibroConfig(ltbo_enabled=True, size_passes=("merge",))
        assert config.passes == ("merge",)

    def test_size_passes_list_is_coerced_to_tuple(self):
        config = CalibroConfig(size_passes=["outline"])
        assert config.size_passes == ("outline",)
        assert config.passes == ("outline",)

    def test_unknown_size_pass_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="unknown size pass"):
            CalibroConfig(size_passes=("outline", "shrinkwrap"))

    def test_duplicate_size_pass_rejected(self):
        with pytest.raises(ConfigError, match="repeat"):
            CalibroConfig(size_passes=("outline", "outline"))

    def test_size_passes_must_be_a_sequence(self):
        with pytest.raises(ConfigError, match="sequence"):
            CalibroConfig(size_passes="outline")

    def test_with_merging_sets_flag_and_extends_name(self):
        config = CalibroConfig.cto_ltbo_plopti(4).with_merging()
        assert config.merging is True
        assert config.name == "CTO+LTBO+PlOpti+Merge"

    def test_config_round_trips_merging_fields(self):
        config = CalibroConfig(
            cto_enabled=True, ltbo_enabled=True, merging=True,
            size_passes=("outline",), name="round-trip",
        )
        again = CalibroConfig.from_dict(config.to_dict())
        assert again.merging is True
        assert again.size_passes == ("outline",)
        assert again.passes == ("outline",)


class TestPipelineIntegration:
    def test_explicit_pass_list_matches_derived_build(self, small_app):
        derived = CalibroConfig.cto_ltbo_plopti(2).with_merging()
        explicit = CalibroConfig(
            cto_enabled=True, parallel_groups=2,
            size_passes=("outline", "merge"), name=derived.name,
        )
        a = build_app(small_app.dexfile, derived)
        b = build_app(small_app.dexfile, explicit)
        assert a.oat.to_bytes() == b.oat.to_bytes()

    def test_pass_state_starts_empty(self):
        state = PassState(methods=[])
        assert state.aliases == {}
        assert state.selection is None and state.ltbo is None
        assert state.merge is None
        context = PassContext()
        assert context.dexfile is None and context.cache is None
        assert context.pool is None
