"""PC-relative patching (§3.3.4)."""

from __future__ import annotations

import pytest

from repro.core.metadata import MethodMetadata, PcRelativeRef
from repro.core.patch import PatchError, patch_pc_relative
from repro.isa import decode, encode_all, instructions as ins


def _identity_map(size: int) -> dict[int, int]:
    return {off: off for off in range(0, size + 4, 4)}


def test_noop_when_layout_unchanged():
    body = [ins.B(offset=8), ins.Nop(), ins.Ret()]
    code = bytearray(encode_all(body))
    meta = MethodMetadata(
        method_name="m", code_size=len(code),
        pc_relative=[PcRelativeRef(offset=0, target=8)],
    )
    assert patch_pc_relative(code, meta, _identity_map(len(code))) == 0


def test_forward_branch_shrinks():
    # b +12 over two nops; remove one nop => b +8
    body = [ins.B(offset=12), ins.Nop(), ins.Nop(), ins.Ret()]
    code_old = encode_all(body)
    new = bytearray(code_old[:4] + code_old[8:])  # drop the first nop
    offset_map = {0: 0, 4: 4, 8: 4, 12: 8, 16: 12}
    meta = MethodMetadata(
        method_name="m", code_size=len(code_old),
        pc_relative=[PcRelativeRef(offset=0, target=12)],
    )
    assert patch_pc_relative(new, meta, offset_map) == 1
    patched = decode(int.from_bytes(new[0:4], "little"))
    assert isinstance(patched, ins.B) and patched.offset == 8


def test_backward_branch_patches():
    body = [ins.Nop(), ins.Nop(), ins.B(offset=-8), ins.Ret()]
    code_old = encode_all(body)
    new = bytearray(code_old[:4] + code_old[8:])  # drop second nop
    offset_map = {0: 0, 4: 4, 8: 4, 12: 8, 16: 12}
    meta = MethodMetadata(
        method_name="m", code_size=len(code_old),
        pc_relative=[PcRelativeRef(offset=8, target=0)],
    )
    assert patch_pc_relative(new, meta, offset_map) == 1
    patched = decode(int.from_bytes(new[4:8], "little"))
    assert isinstance(patched, ins.B) and patched.offset == -4


def test_all_pcrel_kinds_patchable():
    cases = [
        ins.B(offset=8),
        ins.Bl(offset=8),
        ins.BCond(cond=ins.Cond.NE, offset=8),
        ins.Cbz(rt=3, offset=8),
        ins.Cbnz(rt=3, offset=8),
        ins.Tbz(rt=3, bit=5, offset=8),
        ins.Tbnz(rt=3, bit=5, offset=8),
        ins.Adr(rd=3, offset=8),
        ins.LoadLiteral(rt=3, offset=8),
    ]
    for instr in cases:
        body = [instr, ins.Nop(), ins.Ret()]
        code = bytearray(encode_all(body))
        meta = MethodMetadata(
            method_name="m", code_size=len(code),
            pc_relative=[PcRelativeRef(offset=0, target=8)],
        )
        # pretend the target moved 4 bytes closer
        offset_map = {0: 0, 4: 4, 8: 4, 12: 8}
        assert patch_pc_relative(code, meta, offset_map) == 1
        patched = decode(int.from_bytes(code[0:4], "little"))
        assert patched.target_offset == 4


def test_metadata_pointing_at_non_pcrel_raises():
    code = bytearray(encode_all([ins.Nop(), ins.Ret()]))
    meta = MethodMetadata(
        method_name="m", code_size=len(code),
        pc_relative=[PcRelativeRef(offset=0, target=4)],
    )
    with pytest.raises(PatchError, match="non-PC-relative"):
        patch_pc_relative(code, meta, _identity_map(len(code)))


def test_out_of_range_patch_raises():
    code = bytearray(encode_all([ins.Tbz(rt=0, bit=0, offset=8), ins.Nop(), ins.Ret()]))
    meta = MethodMetadata(
        method_name="m", code_size=len(code),
        pc_relative=[PcRelativeRef(offset=0, target=8)],
    )
    # map the target absurdly far away (tbz range is ±32 KiB)
    offset_map = {0: 0, 4: 4, 8: 1 << 20, 12: (1 << 20) + 4}
    with pytest.raises(PatchError):
        patch_pc_relative(code, meta, offset_map)
