"""The three ART patterns and the CTO thunk cache (§2.3.3, §3.1)."""

from __future__ import annotations

from repro.core.patterns import (
    ThunkCache,
    count_pattern_occurrences,
    java_call_pattern,
    runtime_call_pattern,
    stack_check_pattern,
)
from repro.isa import decode_all, encode_all, instructions as ins
from repro.oat import layout


class TestPatternShapes:
    def test_java_call_pattern_matches_fig4a(self):
        ldr, blr = java_call_pattern()
        assert ldr.render() == "ldr x30, [x0, #0x20]"
        assert blr.render() == "blr x30"

    def test_runtime_call_pattern_matches_fig4b(self):
        ldr, blr = runtime_call_pattern("pAllocObjectResolved")
        off = layout.ENTRYPOINT_OFFSETS["pAllocObjectResolved"]
        assert ldr.render() == f"ldr x30, [x19, #{off:#x}]"
        assert blr.render() == "blr x30"

    def test_stack_check_pattern_matches_fig4c(self):
        sub, probe = stack_check_pattern()
        # sub x16, sp, #0x2000 (encoded as #2, lsl #12)
        assert sub.rd == 16 and sub.rn == 31 and sub.imm12 == 2 and sub.shift12
        assert probe.rt == 31 and probe.rn == 16 and probe.size == 4


class TestThunkCache:
    def test_label_cached_once(self):
        cache = ThunkCache()
        l1 = cache.java_call()
        l2 = cache.java_call()
        assert l1 == l2
        assert len(cache.compiled_thunks()) == 1
        assert cache.hits[l1] == 2 and cache.total_sites == 2

    def test_distinct_entrypoints_distinct_thunks(self):
        cache = ThunkCache()
        a = cache.runtime_call("pAllocObjectResolved")
        b = cache.runtime_call("pAllocArrayResolved")
        assert a != b
        assert len(cache.compiled_thunks()) == 2

    def test_call_thunks_are_tail_calls(self):
        """The calling patterns cannot clobber x30 before returning, so
        their thunks tail-call through x16 (see module docstring)."""
        cache = ThunkCache()
        cache.java_call()
        (thunk,) = cache.compiled_thunks()
        instrs = decode_all(thunk.code)
        assert isinstance(instrs[0], ins.LoadStoreImm) and instrs[0].rt == 16
        assert isinstance(instrs[1], ins.Br) and instrs[1].rn == 16

    def test_stack_check_thunk_returns_via_x30(self):
        cache = ThunkCache()
        cache.stack_check()
        (thunk,) = cache.compiled_thunks()
        instrs = decode_all(thunk.code)
        assert isinstance(instrs[-1], ins.Br) and instrs[-1].rn == 30

    def test_thunks_excluded_from_ltbo(self):
        cache = ThunkCache()
        cache.java_call()
        cache.stack_check()
        for thunk in cache.compiled_thunks():
            assert not thunk.metadata.outlining_candidate


class TestPatternCensus:
    def test_counts_patterns_in_stream(self):
        code = encode_all(
            java_call_pattern()
            + stack_check_pattern()
            + runtime_call_pattern("pThrowDivZero")
            + java_call_pattern()
            + [ins.Ret()]
        )
        counts = count_pattern_occurrences(code)
        assert counts == {"java_call": 2, "stack_check": 1, "runtime_call": 1}

    def test_java_call_dominates_in_workload(self, baseline_build):
        """Observation 3: Java calling pattern is the most frequent of
        the three in real apps (1006k vs 173k vs 217k in WeChat)."""
        counts = count_pattern_occurrences(baseline_build.oat.text)
        assert counts["java_call"] > counts["stack_check"]
        assert counts["java_call"] > 0 and counts["runtime_call"] > 0
