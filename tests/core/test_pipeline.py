"""The Fig. 5 end-to-end pipeline and its configurations."""

from __future__ import annotations

from repro.core import CalibroConfig, build_app
from repro.core.hotfilter import HotFunctionFilter


class TestConfigs:
    def test_presets(self):
        assert CalibroConfig.baseline().name == "baseline"
        c = CalibroConfig.cto()
        assert c.cto_enabled and not c.ltbo_enabled
        c = CalibroConfig.cto_ltbo()
        assert c.cto_enabled and c.ltbo_enabled and c.parallel_groups == 1
        c = CalibroConfig.cto_ltbo_plopti(8)
        assert c.parallel_groups == 8
        c = CalibroConfig.full({"m": 10}, groups=4)
        assert c.hot_filter is not None and c.parallel_groups == 4

    def test_with_hot_filter(self):
        base = CalibroConfig.cto_ltbo_plopti(2)
        f = HotFunctionFilter.from_profile({"m": 1})
        assert base.with_hot_filter(f).hot_filter is f


class TestBuildOrdering:
    def test_size_ordering_matches_table4(
        self, baseline_build, cto_build, ltbo_build, plopti_build
    ):
        """baseline > CTO > CTO+LTBO, and PlOpti gives back some size."""
        assert cto_build.text_size < baseline_build.text_size
        assert ltbo_build.text_size < cto_build.text_size
        assert ltbo_build.text_size <= plopti_build.text_size < baseline_build.text_size

    def test_reduction_band(self, baseline_build, ltbo_build):
        """CTO+LTBO lands in a plausible band around the paper's 19%
        (generated workloads sit a bit higher; see EXPERIMENTS.md)."""
        reduction = 1 - ltbo_build.text_size / baseline_build.text_size
        assert 0.10 < reduction < 0.45

    def test_timings_and_summary(self, ltbo_build):
        t = ltbo_build.timings
        assert set(t) == {"compile", "ltbo", "merge", "link", "total"}
        assert t["total"] >= t["compile"] + t["ltbo"]  # link adds a bit more
        s = ltbo_build.summary()
        assert s["outlined_functions"] > 0 and s["occurrences_replaced"] > 0

    def test_baseline_has_no_ltbo_artifacts(self, baseline_build):
        assert baseline_build.ltbo is None and baseline_build.selection is None
        assert baseline_build.timings["ltbo"] < baseline_build.timings["compile"]

    def test_outlined_functions_linked(self, ltbo_build):
        outlined = [n for n in ltbo_build.oat.methods if n.startswith("MethodOutliner$")]
        assert len(outlined) == ltbo_build.ltbo.total_outlined_functions
        assert outlined


class TestHotFilterBuild:
    def test_full_config_excludes_hot_methods(self, small_app, baseline_build):
        from repro.profiling import profile_app

        report = profile_app(
            baseline_build.oat, small_app.dexfile, small_app.ui_script,
            native_handlers=small_app.native_handlers,
        )
        cfg = CalibroConfig.full(report.cycles, groups=4, coverage=0.80)
        build = build_app(small_app.dexfile, cfg)
        plain = build_app(small_app.dexfile, CalibroConfig.cto_ltbo_plopti(4))
        assert build.text_size >= plain.text_size  # protection costs size
