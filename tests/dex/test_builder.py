"""MethodBuilder: label resolution and emission."""

from __future__ import annotations

import pytest

from repro.dex import MethodBuilder, bytecode as bc


def test_forward_label_resolution():
    b = MethodBuilder("LT;->f", num_inputs=1, num_registers=3)
    done = b.new_label()
    b.if_z("ge", 0, done)
    b.const(1, 0)
    b.binop("sub", 0, 1, 0)
    b.bind(done)
    b.ret(0)
    m = b.build()
    assert isinstance(m.code[0], bc.IfZ)
    assert m.code[0].target == 3


def test_backward_label_resolution():
    b = MethodBuilder("LT;->loop", num_inputs=1, num_registers=3)
    top = b.new_label()
    done = b.new_label()
    b.bind(top)
    b.if_z("eq", 0, done)
    b.binop_lit("sub", 0, 0, 1)
    b.goto(top)
    b.bind(done)
    b.ret(0)
    m = b.build()
    assert m.code[2].target == 0


def test_switch_labels():
    b = MethodBuilder("LT;->sw", num_inputs=1, num_registers=3)
    arms = [b.new_label() for _ in range(3)]
    out = b.new_label()
    b.packed_switch(0, 0, arms)
    b.const(1, 99)
    b.goto(out)
    for i, arm in enumerate(arms):
        b.bind(arm)
        b.const(1, i)
        b.goto(out)
    b.bind(out)
    b.ret(1)
    m = b.build()
    sw = m.code[0]
    assert isinstance(sw, bc.PackedSwitch)
    assert sw.targets == (3, 5, 7)


def test_unbound_label_raises():
    b = MethodBuilder("LT;->bad", num_inputs=0, num_registers=2)
    dangling = b.new_label()
    b.goto(dangling)
    b.ret_void()
    with pytest.raises(ValueError, match="unbound label"):
        b.build()


def test_double_bind_raises():
    b = MethodBuilder("LT;->bad2", num_inputs=0, num_registers=1)
    label = b.new_label()
    b.bind(label)
    with pytest.raises(ValueError, match="already bound"):
        b.bind(label)


def test_fluent_chaining():
    m = (
        MethodBuilder("LT;->c", num_inputs=2, num_registers=4)
        .binop("add", 2, 0, 1)
        .binop_lit("mul", 2, 2, 3)
        .ret(2)
        .build()
    )
    assert len(m.code) == 3


def test_method_properties():
    b = MethodBuilder("LT;->leafy", num_inputs=1, num_registers=2)
    b.ret(0)
    m = b.build()
    assert m.is_leaf and not m.has_switch

    b = MethodBuilder("LT;->caller", num_inputs=1, num_registers=3)
    b.invoke_static("LT;->leafy", args=(0,), dst=1)
    b.ret(1)
    m2 = b.build()
    assert not m2.is_leaf
    assert m2.invoked_methods == ["LT;->leafy"]


def test_literal_range_enforced():
    with pytest.raises(ValueError):
        bc.BinOpLit(op="add", dst=0, lhs=0, literal=4096)


def test_unknown_ops_rejected():
    with pytest.raises(ValueError):
        bc.BinOp(op="pow", dst=0, lhs=0, rhs=1)
    with pytest.raises(ValueError):
        bc.If(cmp="weird", lhs=0, rhs=1, target=0)
