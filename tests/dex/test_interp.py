"""Reference interpreter semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dex import DexClass, DexError, DexFile, DexMethod, Interpreter, MethodBuilder, wrap64


def _single(method: DexMethod, extra: list[DexMethod] | None = None) -> Interpreter:
    return Interpreter(DexFile(classes=[DexClass("LT;", [method] + (extra or []))]))


def _binop_method(op: str) -> DexMethod:
    b = MethodBuilder(f"LT;->{op}", num_inputs=2, num_registers=3)
    b.binop(op, 2, 0, 1)
    b.ret(2)
    return b.build()


class TestArithmetic:
    @given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=100)
    def test_add_wraps(self, a, b):
        it = _single(_binop_method("add"))
        assert it.call("LT;->add", [a, b]) == wrap64(a + b)

    @given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=100)
    def test_mul_wraps(self, a, b):
        it = _single(_binop_method("mul"))
        assert it.call("LT;->mul", [a, b]) == wrap64(a * b)

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (0, 5, 0)],
    )
    def test_div_truncates_toward_zero(self, a, b, expected):
        """AArch64 sdiv semantics, not Python floor division."""
        it = _single(_binop_method("div"))
        assert it.call("LT;->div", [a, b]) == expected

    def test_div_by_zero_throws(self):
        it = _single(_binop_method("div"))
        with pytest.raises(DexError) as exc:
            it.call("LT;->div", [1, 0])
        assert exc.value.kind == "div-zero"

    @given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=60)
    def test_bitwise(self, a, b):
        for op, fn in (("and", int.__and__), ("or", int.__or__), ("xor", int.__xor__)):
            it = _single(_binop_method(op))
            assert it.call(f"LT;->{op}", [a, b]) == wrap64(fn(a, b))


class TestObjectsAndArrays:
    def test_field_roundtrip(self):
        b = MethodBuilder("LT;->f", num_inputs=1, num_registers=4)
        b.new_instance(1, class_idx=3, num_fields=2)
        b.iput(0, 1, 1)
        b.iget(2, 1, 1)
        b.ret(2)
        assert _single(b.build()).call("LT;->f", [42]) == 42

    def test_null_pointer(self):
        b = MethodBuilder("LT;->n", num_inputs=1, num_registers=3)
        b.iget(1, 0, 0)
        b.ret(1)
        with pytest.raises(DexError) as exc:
            _single(b.build()).call("LT;->n", [0])
        assert exc.value.kind == "null-pointer"

    def test_array_bounds(self):
        b = MethodBuilder("LT;->a", num_inputs=1, num_registers=4)
        b.const(1, 3)
        b.new_array(2, 1)
        b.aget(3, 2, 0)
        b.ret(3)
        it = _single(b.build())
        assert it.call("LT;->a", [2]) == 0
        with pytest.raises(DexError) as exc:
            it.call("LT;->a", [5])
        assert exc.value.kind == "array-bounds"
        with pytest.raises(DexError) as exc:
            it.call("LT;->a", [-1])
        assert exc.value.kind == "array-bounds"

    def test_negative_array_size(self):
        b = MethodBuilder("LT;->neg", num_inputs=1, num_registers=3)
        b.new_array(1, 0)
        b.array_length(2, 1)
        b.ret(2)
        it = _single(b.build())
        assert it.call("LT;->neg", [4]) == 4
        with pytest.raises(DexError) as exc:
            it.call("LT;->neg", [-2])
        assert exc.value.kind == "negative-array-size"


class TestControlFlow:
    def test_switch_dispatch(self):
        b = MethodBuilder("LT;->sw", num_inputs=1, num_registers=3)
        arms = [b.new_label() for _ in range(3)]
        out = b.new_label()
        b.packed_switch(0, 10, arms)
        b.const(1, -1)  # default
        b.goto(out)
        for i, arm in enumerate(arms):
            b.bind(arm)
            b.const(1, 100 + i)
            b.goto(out)
        b.bind(out)
        b.ret(1)
        it = _single(b.build())
        assert it.call("LT;->sw", [10]) == 100
        assert it.call("LT;->sw", [12]) == 102
        assert it.call("LT;->sw", [13]) == -1
        assert it.call("LT;->sw", [0]) == -1

    def test_recursion_and_stack_overflow(self):
        b = MethodBuilder("LT;->r", num_inputs=1, num_registers=4)
        stop = b.new_label()
        b.if_z("le", 0, stop)
        b.binop_lit("sub", 1, 0, 1)
        b.invoke_static("LT;->r", args=(1,), dst=2)
        b.binop("add", 2, 2, 0)
        b.ret(2)
        b.bind(stop)
        b.const(2, 0)
        b.ret(2)
        it = _single(b.build())
        assert it.call("LT;->r", [10]) == 55
        with pytest.raises(DexError) as exc:
            it.call("LT;->r", [10_000])
        assert exc.value.kind == "stack-overflow"


class TestNativeAndVirtual:
    def test_native_dispatch(self):
        nat = DexMethod(name="LT;->nat", num_registers=2, num_inputs=2, is_native=True)
        b = MethodBuilder("LT;->c", num_inputs=2, num_registers=3)
        b.invoke_static("LT;->nat", args=(0, 1), dst=2)
        b.ret(2)
        it = Interpreter(
            DexFile(classes=[DexClass("LT;", [b.build(), nat])]),
            native_handlers={"LT;->nat": lambda args: args[0] - args[1]},
        )
        assert it.call("LT;->c", [9, 4]) == 5

    def test_unregistered_native_returns_zero(self):
        nat = DexMethod(name="LT;->nat", num_registers=1, num_inputs=1, is_native=True)
        b = MethodBuilder("LT;->c", num_inputs=1, num_registers=2)
        b.invoke_static("LT;->nat", args=(0,), dst=1)
        b.ret(1)
        it = Interpreter(DexFile(classes=[DexClass("LT;", [b.build(), nat])]))
        assert it.call("LT;->c", [3]) == 0

    def test_virtual_null_receiver(self):
        callee = MethodBuilder("LT;->m", num_inputs=1, num_registers=2)
        callee.ret(0)
        b = MethodBuilder("LT;->c", num_inputs=1, num_registers=3)
        b.invoke_virtual("LT;->m", receiver=0, dst=1)
        b.ret(1)
        it = _single(b.build(), [callee.build()])
        with pytest.raises(DexError) as exc:
            it.call("LT;->c", [0])
        assert exc.value.kind == "null-pointer"

    def test_step_budget(self):
        b = MethodBuilder("LT;->spin", num_inputs=0, num_registers=2)
        top = b.new_label()
        b.bind(top)
        b.goto(top)
        m = b.build()
        # append unreachable return to satisfy the verifier-ish shape
        it = Interpreter(
            DexFile(classes=[DexClass("LT;", [m])]), max_steps=1000
        )
        with pytest.raises(DexError) as exc:
            it.call("LT;->spin")
        assert exc.value.kind == "step-budget-exhausted"

    def test_wrong_arity_rejected(self):
        b = MethodBuilder("LT;->two", num_inputs=2, num_registers=3)
        b.ret(0)
        it = _single(b.build())
        with pytest.raises(ValueError, match="expects 2"):
            it.call("LT;->two", [1])
