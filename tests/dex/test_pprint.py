"""Dex pretty-printer."""

from __future__ import annotations

from repro.dex import DexClass, DexFile, MethodBuilder
from repro.dex.method import DexMethod
from repro.dex.pprint import format_dexfile, format_method


def test_method_listing_contains_all_instructions(small_app):
    for method in small_app.dexfile.all_methods()[:10]:
        text = format_method(method)
        if method.is_native:
            assert "native" in text
            continue
        # one line per instruction plus the header
        assert len(text.splitlines()) == len(method.code) + 1


def test_branch_targets_get_labels():
    b = MethodBuilder("LT;->l", num_inputs=1, num_registers=3)
    top = b.new_label()
    done = b.new_label()
    b.bind(top)
    b.if_z("eq", 0, done)
    b.binop_lit("sub", 0, 0, 1)
    b.goto(top)
    b.bind(done)
    b.ret(0)
    text = format_method(b.build())
    assert ":0" in text and ":3" in text
    assert "if-eqz v0, :3" in text
    assert "goto :0" in text


def test_invoke_rendering():
    b = MethodBuilder("LT;->c", num_inputs=2, num_registers=4)
    b.invoke_static("LT;->x", args=(0, 1), dst=2)
    b.invoke_virtual("LT;->y", receiver=2, args=(0,), dst=3)
    b.ret(3)
    text = format_method(b.build())
    assert "invoke-static {v0, v1}, LT;->x -> v2" in text
    assert "invoke-virtual {v2, v0}, LT;->y -> v3" in text


def test_file_listing_includes_strings_and_classes(small_app):
    text = format_dexfile(small_app.dexfile)
    assert ".strings" in text
    assert all(f".class {cls.name}" in text for cls in small_app.dexfile.classes[:3])


def test_native_method_one_liner():
    m = DexMethod(name="LT;->n", num_registers=2, num_inputs=2, is_native=True)
    assert format_method(m).endswith("native)")
