"""Dex JSON serialisation."""

from __future__ import annotations

import pytest

from repro.dex import (
    DexClass,
    DexFile,
    MethodBuilder,
    dexfile_from_json,
    dexfile_to_json,
    load_dexfile,
    save_dexfile,
)
from repro.dex.method import DexMethod


def test_roundtrip_generated_app(small_app):
    data = dexfile_to_json(small_app.dexfile)
    back = dexfile_from_json(data)
    assert back.method_names() == small_app.dexfile.method_names()
    assert back.string_table == small_app.dexfile.string_table
    for a, b in zip(back.all_methods(), small_app.dexfile.all_methods()):
        assert a.code == b.code
        assert (a.num_registers, a.num_inputs, a.is_native, a.returns_value) == (
            b.num_registers, b.num_inputs, b.is_native, b.returns_value,
        )


def test_all_opcodes_roundtrip():
    b = MethodBuilder("LAll;->m", num_inputs=2, num_registers=8)
    t = b.new_label()
    out = b.new_label()
    arms = [b.new_label()]
    b.nop()
    b.const(2, -5)
    b.const_string(3, 0)
    b.move(4, 2)
    b.binop("min", 4, 4, 2)
    b.binop_lit("shl", 4, 4, 3)
    b.if_cmp("lt", 0, 1, t)
    b.if_z("ne", 0, t)
    b.bind(t)
    b.packed_switch(0, 0, arms)
    b.new_instance(5, class_idx=1, num_fields=2)
    b.iput(4, 5, 0)
    b.iget(6, 5, 0)
    b.new_array(7, 2)
    b.array_length(6, 7)
    b.bind(arms[0])
    b.invoke_static("LAll;->m2", args=(0, 1), dst=6)
    b.invoke_virtual("LAll;->m2", receiver=5, args=(1,), dst=6)
    b.goto(out)
    b.bind(out)
    b.ret(6)
    m = b.build()

    m2 = MethodBuilder("LAll;->m2", num_inputs=2, num_registers=3)
    m2.aget(2, 0, 1)
    m2.aput(2, 0, 1)
    m2.ret(2)

    dex = DexFile(classes=[DexClass("LAll;", [m, m2.build()])], string_table=["s"])
    back = dexfile_from_json(dexfile_to_json(dex), verify=False)
    assert [type(i).__name__ for i in back.all_methods()[0].code] == [
        type(i).__name__ for i in dex.all_methods()[0].code
    ]
    assert back.all_methods()[0].code == dex.all_methods()[0].code


def test_native_methods_roundtrip():
    dex = DexFile(classes=[DexClass("LN;", [
        DexMethod(name="LN;->nat", num_registers=2, num_inputs=2, is_native=True)
    ])])
    back = dexfile_from_json(dexfile_to_json(dex), verify=False)
    assert back.all_methods()[0].is_native


def test_file_roundtrip(tmp_path, small_app):
    path = tmp_path / "app.dex.json"
    save_dexfile(small_app.dexfile, str(path))
    back = load_dexfile(str(path))
    assert back.method_names() == small_app.dexfile.method_names()


def test_bad_format_rejected():
    with pytest.raises(ValueError, match="format"):
        dexfile_from_json({"format": "something-else"})


def test_unknown_opcode_rejected():
    data = {
        "format": "repro-dex/1",
        "string_table": [],
        "classes": [{
            "name": "LX;",
            "methods": [{
                "name": "LX;->m", "num_registers": 1, "num_inputs": 0,
                "is_native": False, "returns_value": True,
                "code": [["teleport", {}]],
            }],
        }],
    }
    with pytest.raises(ValueError, match="unknown opcode"):
        dexfile_from_json(data)


def test_verification_on_load():
    data = {
        "format": "repro-dex/1",
        "string_table": [],
        "classes": [{
            "name": "LX;",
            "methods": [{
                "name": "LX;->m", "num_registers": 1, "num_inputs": 0,
                "is_native": False, "returns_value": True,
                "code": [["const", {"dst": 9, "value": 1}], ["return", {"src": 0}]],
            }],
        }],
    }
    from repro.dex import VerificationError

    with pytest.raises(VerificationError):
        dexfile_from_json(data)
    # but loadable with verify off for tooling
    dexfile_from_json(data, verify=False)
