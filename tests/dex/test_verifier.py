"""Structural verifier rejection cases."""

from __future__ import annotations

import pytest

from repro.dex import (
    DexClass,
    DexFile,
    DexMethod,
    MethodBuilder,
    VerificationError,
    bytecode as bc,
    verify_dexfile,
    verify_method,
)


def _file_with(method: DexMethod, extra: list[DexMethod] | None = None) -> DexFile:
    return DexFile(classes=[DexClass("LT;", [method] + (extra or []))])


def test_register_out_of_range():
    m = DexMethod(
        name="LT;->bad", num_registers=2, num_inputs=0,
        code=[bc.Const(dst=5, value=1), bc.Return(src=0)],
    )
    with pytest.raises(VerificationError, match="v5 out of range"):
        verify_method(m)


def test_branch_target_out_of_range():
    m = DexMethod(
        name="LT;->bad", num_registers=2, num_inputs=0,
        code=[bc.Goto(target=99), bc.ReturnVoid()],
    )
    with pytest.raises(VerificationError, match="branch target"):
        verify_method(m)


def test_fall_off_end():
    m = DexMethod(
        name="LT;->bad", num_registers=2, num_inputs=0,
        code=[bc.Const(dst=0, value=1)],
    )
    with pytest.raises(VerificationError, match="fall off"):
        verify_method(m)


def test_empty_body():
    m = DexMethod(name="LT;->bad", num_registers=1, num_inputs=0, code=[])
    with pytest.raises(VerificationError, match="empty"):
        verify_method(m)


def test_unknown_callee():
    b = MethodBuilder("LT;->c", num_inputs=0, num_registers=2)
    b.invoke_static("LT;->ghost", dst=0)
    b.ret(0)
    with pytest.raises(VerificationError, match="unknown callee"):
        verify_dexfile(_file_with(b.build()))


def test_too_many_args():
    m = DexMethod(
        name="LT;->bad", num_registers=8, num_inputs=7,
        code=[bc.InvokeStatic(method="LT;->bad", args=(0, 1, 2, 3, 4, 5, 6)), bc.ReturnVoid()],
        returns_value=False,
    )
    with pytest.raises(VerificationError, match="more than 6"):
        verify_method(m)


def test_more_inputs_than_registers():
    with pytest.raises(ValueError, match="more inputs"):
        DexMethod(name="LT;->bad", num_registers=1, num_inputs=2)


def test_native_with_code_rejected():
    with pytest.raises(ValueError, match="native"):
        DexMethod(
            name="LT;->bad", num_registers=1, num_inputs=0,
            code=[bc.ReturnVoid()], is_native=True,
        )


def test_string_index_out_of_range():
    b = MethodBuilder("LT;->s", num_inputs=0, num_registers=2)
    b.const_string(0, 3)
    b.ret(0)
    dex = DexFile(classes=[DexClass("LT;", [b.build()])], string_table=["only-one"])
    with pytest.raises(VerificationError, match="string index"):
        verify_dexfile(dex)


def test_void_callee_result_rejected():
    void = MethodBuilder("LT;->v", num_inputs=0, num_registers=1, returns_value=False)
    void.ret_void()
    caller = MethodBuilder("LT;->c", num_inputs=0, num_registers=2)
    caller.invoke_static("LT;->v", dst=0)
    caller.ret(0)
    with pytest.raises(VerificationError, match="expects a result"):
        verify_dexfile(_file_with(caller.build(), [void.build()]))


def test_duplicate_method_names():
    a = MethodBuilder("LT;->x", num_inputs=0, num_registers=1)
    a.ret(0)
    b = MethodBuilder("LT;->x", num_inputs=0, num_registers=1)
    b.ret(0)
    with pytest.raises(VerificationError, match="duplicate"):
        verify_dexfile(_file_with(a.build(), [b.build()]))


def test_valid_file_passes(small_app):
    verify_dexfile(small_app.dexfile)  # must not raise


def test_native_methods_skip_body_checks():
    m = DexMethod(name="LT;->nat", num_registers=2, num_inputs=2, is_native=True)
    verify_method(m)  # no code, no complaints
