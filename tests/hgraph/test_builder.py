"""Dex → HGraph construction."""

from __future__ import annotations

import pytest

from repro.dex import MethodBuilder, DexMethod
from repro.hgraph import build_hgraph, IRValidationError


def _loop_method() -> DexMethod:
    b = MethodBuilder("LT;->loop", num_inputs=1, num_registers=4)
    top = b.new_label()
    done = b.new_label()
    b.const(1, 0)
    b.bind(top)
    b.if_z("eq", 0, done)
    b.binop("add", 1, 1, 0)
    b.binop_lit("sub", 0, 0, 1)
    b.goto(top)
    b.bind(done)
    b.ret(1)
    return b.build()


def test_loop_block_structure():
    g = build_hgraph(_loop_method())
    g.validate()
    # entry, loop header, body, exit
    assert len(g.blocks) == 4
    header = next(b for b in g.blocks.values() if b.terminator.kind == "if")
    assert len(header.successors) == 2
    body = g.blocks[header.successors[1]]
    assert body.terminator.kind == "goto"
    assert body.successors == [header.block_id]


def test_predecessors_computed():
    g = build_hgraph(_loop_method())
    header = next(b for b in g.blocks.values() if b.terminator.kind == "if")
    # reached from entry and from loop body
    assert len(header.predecessors) == 2


def test_fallthrough_gets_explicit_goto():
    b = MethodBuilder("LT;->ft", num_inputs=1, num_registers=3)
    skip = b.new_label()
    b.if_z("eq", 0, skip)
    b.const(1, 1)
    b.bind(skip)
    b.ret(0)
    g = build_hgraph(b.build())
    mid = next(
        blk for blk in g.blocks.values()
        if blk.instructions and blk.instructions[0].kind == "const"
    )
    assert mid.terminator.kind == "goto"


def test_switch_successors_include_default():
    b = MethodBuilder("LT;->sw", num_inputs=1, num_registers=3)
    arms = [b.new_label() for _ in range(2)]
    out = b.new_label()
    b.packed_switch(0, 0, arms)
    b.const(1, 9)
    b.goto(out)
    for arm in arms:
        b.bind(arm)
        b.const(1, 1)
        b.goto(out)
    b.bind(out)
    b.ret(1)
    g = build_hgraph(b.build())
    sw_block = next(blk for blk in g.blocks.values() if blk.terminator.kind == "switch")
    assert len(sw_block.successors) == 3  # two arms + default


def test_native_method_rejected():
    m = DexMethod(name="LT;->n", num_registers=2, num_inputs=2, is_native=True)
    with pytest.raises(ValueError, match="native"):
        build_hgraph(m)


def test_block_order_starts_at_entry():
    g = build_hgraph(_loop_method())
    assert g.block_order()[0] == g.entry_id
    assert set(g.block_order()) == set(g.blocks)


def test_nop_dropped():
    b = MethodBuilder("LT;->n", num_inputs=0, num_registers=1)
    b.nop()
    b.const(0, 1)
    b.ret(0)
    g = build_hgraph(b.build())
    kinds = [i.kind for blk in g.blocks.values() for i in blk.instructions]
    assert "nop" not in kinds


def test_instruction_count():
    g = build_hgraph(_loop_method())
    assert g.instruction_count() == sum(len(b.instructions) for b in g.blocks.values())


def test_validate_catches_bad_successor():
    g = build_hgraph(_loop_method())
    first = g.blocks[g.entry_id]
    first.successors = [999]
    with pytest.raises(IRValidationError):
        g.validate()
