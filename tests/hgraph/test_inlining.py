"""Small-method inlining pass."""

from __future__ import annotations

import random

from repro.compiler import dex2oat
from repro.dex import DexClass, DexFile, Interpreter, MethodBuilder
from repro.hgraph import build_hgraph
from repro.hgraph.passes import inline_small_methods


def _graphs(dex: DexFile) -> dict:
    return {m.name: build_hgraph(m) for m in dex.all_methods() if not m.is_native}


def _tiny_add() -> MethodBuilder:
    b = MethodBuilder("LT;->tiny", num_inputs=2, num_registers=3)
    b.binop("add", 2, 0, 1)
    b.ret(2)
    return b


def test_inlines_single_block_static_callee():
    caller = MethodBuilder("LT;->c", num_inputs=2, num_registers=4)
    caller.invoke_static("LT;->tiny", args=(0, 1), dst=2)
    caller.binop_lit("mul", 2, 2, 3)
    caller.ret(2)
    dex = DexFile(classes=[DexClass("LT;", [_tiny_add().build(), caller.build()])])
    graphs = _graphs(dex)
    n = inline_small_methods(graphs["LT;->c"], graphs.get)
    assert n == 1
    kinds = [
        i.kind for bid in graphs["LT;->c"].block_order()
        for i in graphs["LT;->c"].blocks[bid].instructions
    ]
    assert "invoke-static" not in kinds


def test_virtual_calls_not_inlined():
    caller = MethodBuilder("LT;->c", num_inputs=2, num_registers=4)
    caller.invoke_virtual("LT;->tiny", receiver=0, args=(1,), dst=2)
    caller.ret(2)
    dex = DexFile(classes=[DexClass("LT;", [_tiny_add().build(), caller.build()])])
    graphs = _graphs(dex)
    assert inline_small_methods(graphs["LT;->c"], graphs.get) == 0


def test_multiblock_callee_not_inlined():
    callee = MethodBuilder("LT;->branchy", num_inputs=2, num_registers=4)
    t = callee.new_label()
    callee.if_z("eq", 0, t)
    callee.ret(1)
    callee.bind(t)
    callee.ret(0)
    caller = MethodBuilder("LT;->c", num_inputs=2, num_registers=4)
    caller.invoke_static("LT;->branchy", args=(0, 1), dst=2)
    caller.ret(2)
    dex = DexFile(classes=[DexClass("LT;", [callee.build(), caller.build()])])
    graphs = _graphs(dex)
    assert inline_small_methods(graphs["LT;->c"], graphs.get) == 0


def test_recursive_site_not_inlined():
    b = MethodBuilder("LT;->r", num_inputs=1, num_registers=4)
    b.invoke_static("LT;->r", args=(0,), dst=1)
    b.ret(1)
    dex = DexFile(classes=[DexClass("LT;", [b.build()])])
    graphs = _graphs(dex)
    assert inline_small_methods(graphs["LT;->r"], graphs.get) == 0


def test_site_cap_respected():
    caller = MethodBuilder("LT;->c", num_inputs=2, num_registers=4)
    for _ in range(6):
        caller.invoke_static("LT;->tiny", args=(0, 1), dst=2)
    caller.ret(2)
    dex = DexFile(classes=[DexClass("LT;", [_tiny_add().build(), caller.build()])])
    graphs = _graphs(dex)
    assert inline_small_methods(graphs["LT;->c"], graphs.get, max_inline_sites=2) == 2


def test_large_callee_not_inlined():
    big = MethodBuilder("LT;->big", num_inputs=2, num_registers=4)
    for _ in range(12):
        big.binop("add", 2, 0, 1)
    big.ret(2)
    caller = MethodBuilder("LT;->c", num_inputs=2, num_registers=4)
    caller.invoke_static("LT;->big", args=(0, 1), dst=2)
    caller.ret(2)
    dex = DexFile(classes=[DexClass("LT;", [big.build(), caller.build()])])
    graphs = _graphs(dex)
    assert inline_small_methods(graphs["LT;->c"], graphs.get) == 0


def test_inlined_semantics_preserved():
    """End to end: inlined builds behave identically on random inputs."""
    from repro.core import CalibroConfig, build_app
    from repro.runtime import Emulator
    from repro.workloads import app_spec, generate_app
    import dataclasses

    app = generate_app(app_spec("Fanqie", 0.12))
    interp = Interpreter(
        app.dexfile, native_handlers=app.native_handlers, max_steps=100_000_000
    )
    cfg = dataclasses.replace(CalibroConfig.cto_ltbo(), inlining=True)
    build = build_app(app.dexfile, cfg)
    assert build.dex2oat.inlined_sites > 0
    emu = Emulator(build.oat, app.dexfile, native_handlers=app.native_handlers)
    rng = random.Random(5)
    for name in rng.sample(app.dexfile.method_names(), k=25):
        args = [rng.randint(0, 300), rng.randint(0, 300)]
        want = interp.call(name, args)
        got = emu.call(name, args)
        assert got.trap is None and got.value == want, name


def test_void_callee_result_handling():
    callee = MethodBuilder("LT;->v", num_inputs=1, num_registers=2, returns_value=False)
    callee.ret_void()
    caller = MethodBuilder("LT;->c", num_inputs=1, num_registers=3)
    caller.invoke_static("LT;->v", args=(0,))
    caller.ret(0)
    dex = DexFile(classes=[DexClass("LT;", [callee.build(), caller.build()])])
    graphs = _graphs(dex)
    assert inline_small_methods(graphs["LT;->c"], graphs.get) == 1
    interp = Interpreter(dex)
    assert interp.call("LT;->c", [7]) == 7  # dex-level semantics unchanged
