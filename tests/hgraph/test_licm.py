"""Loop-invariant code motion: dominators, loops, hoisting safety."""

from __future__ import annotations

from repro.dex import DexClass, DexFile, Interpreter, MethodBuilder
from repro.hgraph import build_hgraph
from repro.hgraph.passes import dominators, hoist_loop_invariants, natural_loops


def _loop_method(body_ops):
    b = MethodBuilder("LT;->m", num_inputs=2, num_registers=8)
    top = b.new_label()
    done = b.new_label()
    b.const(2, 0)
    b.bind(top)
    b.if_z("eq", 0, done)
    body_ops(b)
    b.binop_lit("sub", 0, 0, 1)
    b.goto(top)
    b.bind(done)
    b.ret(2)
    return b.build()


def _loop_kinds(graph):
    """Instruction kinds inside natural-loop bodies."""
    out = []
    for header, body in natural_loops(graph).items():
        for bid in body:
            out.extend(
                (i.kind, i.extra.get("op")) for i in graph.blocks[bid].instructions
            )
    return out


class TestAnalysis:
    def test_dominators_straight_line(self):
        b = MethodBuilder("LT;->s", num_inputs=1, num_registers=2)
        b.const(1, 1)
        b.ret(1)
        g = build_hgraph(b.build())
        dom = dominators(g)
        assert dom[g.entry_id] == {g.entry_id}

    def test_loop_detected(self):
        g = build_hgraph(_loop_method(lambda b: b.binop("add", 2, 2, 0)))
        loops = natural_loops(g)
        assert len(loops) == 1
        (body,) = loops.values()
        assert len(body) == 2  # header + latch body

    def test_no_loops_in_dag(self):
        b = MethodBuilder("LT;->d", num_inputs=1, num_registers=3)
        t = b.new_label()
        b.if_z("eq", 0, t)
        b.const(1, 1)
        b.ret(1)
        b.bind(t)
        b.const(1, 2)
        b.ret(1)
        g = build_hgraph(b.build())
        assert natural_loops(g) == {}


class TestHoisting:
    def test_invariant_hoisted(self):
        g = build_hgraph(
            _loop_method(
                lambda b: (b.binop("mul", 3, 1, 1), b.binop("add", 2, 2, 3))
            )
        )
        assert hoist_loop_invariants(g)
        assert ("binop", "mul") not in _loop_kinds(g)

    def test_variant_not_hoisted(self):
        # v3 depends on the loop counter v0: must stay.
        g = build_hgraph(
            _loop_method(
                lambda b: (b.binop("mul", 3, 0, 1), b.binop("add", 2, 2, 3))
            )
        )
        hoist_loop_invariants(g)
        assert ("binop", "mul") in _loop_kinds(g)

    def test_live_in_blocks_hoist(self):
        # v3 is read before written in the loop (carried from outside):
        # hoisting would clobber the first-iteration read.
        b = MethodBuilder("LT;->m", num_inputs=2, num_registers=8)
        top = b.new_label()
        done = b.new_label()
        b.const(2, 0)
        b.const(3, 99)                  # pre-loop value of v3
        b.bind(top)
        b.if_z("eq", 0, done)
        b.binop("add", 2, 2, 3)         # reads v3 (old value on iter 1)
        b.binop("mul", 3, 1, 1)         # then writes it
        b.binop_lit("sub", 0, 0, 1)
        b.goto(top)
        b.bind(done)
        b.ret(2)
        g = build_hgraph(b.build())
        hoist_loop_invariants(g)
        assert ("binop", "mul") in _loop_kinds(g)

    def test_throwing_instruction_not_hoisted(self):
        # div can throw: hoisting would throw on the zero-trip path.
        g = build_hgraph(
            _loop_method(
                lambda b: (b.binop("div", 3, 1, 1), b.binop("add", 2, 2, 3))
            )
        )
        hoist_loop_invariants(g)
        assert ("binop", "div") in _loop_kinds(g)

    def test_semantics_preserved_on_zero_trip_loop(self):
        """Hoisted code must not change a loop that never runs."""
        dex_method = _loop_method(
            lambda b: (b.binop("mul", 3, 1, 1), b.binop("add", 2, 2, 3))
        )
        dex = DexFile(classes=[DexClass("LT;", [dex_method])])
        interp = Interpreter(dex)
        for n, m in [(0, 7), (5, 3), (1, -2)]:
            want = interp.call("LT;->m", [n, m])
            # compile through the full (LICM-enabled) pipeline and emulate
            from repro.core import CalibroConfig, build_app
            from repro.runtime import Emulator

            build = build_app(dex, CalibroConfig.baseline())
            got = Emulator(build.oat, dex).call("LT;->m", [n, m])
            assert got.trap is None and got.value == want, (n, m)

    def test_idempotent_preheader(self):
        g = build_hgraph(
            _loop_method(
                lambda b: (b.binop("mul", 3, 1, 1), b.binop("add", 2, 2, 3))
            )
        )
        hoist_loop_invariants(g)
        n_blocks = len(g.blocks)
        assert not hoist_loop_invariants(g)  # nothing more to do
        assert len(g.blocks) == n_blocks     # no preheader churn
