"""Optimization passes: unit behaviour plus semantic preservation.

The preservation property compares dex interpretation of the original
method against emulated execution of the *optimized and compiled*
method — passes are only correct if that end-to-end equality holds.
"""

from __future__ import annotations

import random

from repro.dex import DexClass, DexFile, Interpreter, MethodBuilder
from repro.hgraph import build_hgraph, PassManager
from repro.hgraph.passes import (
    eliminate_dead_code,
    fold_constants,
    merge_returns,
    propagate_copies,
    remove_unreachable,
    value_number,
)


def _kinds(graph):
    return [i.kind for bid in graph.block_order() for i in graph.blocks[bid].instructions]


class TestConstantFolding:
    def test_binop_of_constants_folds(self):
        b = MethodBuilder("LT;->f", num_inputs=0, num_registers=4)
        b.const(0, 6)
        b.const(1, 7)
        b.binop("mul", 2, 0, 1)
        b.ret(2)
        g = build_hgraph(b.build())
        assert fold_constants(g)
        consts = [i for blk in g.blocks.values() for i in blk.instructions if i.kind == "const"]
        assert any(i.extra["value"] == 42 for i in consts)

    def test_div_by_zero_not_folded(self):
        b = MethodBuilder("LT;->f", num_inputs=0, num_registers=4)
        b.const(0, 6)
        b.const(1, 0)
        b.binop("div", 2, 0, 1)
        b.ret(2)
        g = build_hgraph(b.build())
        fold_constants(g)
        assert "binop" in _kinds(g)  # the throwing div survives

    def test_constant_branch_becomes_goto(self):
        b = MethodBuilder("LT;->f", num_inputs=0, num_registers=4)
        t = b.new_label()
        b.const(0, 1)
        b.if_z("eq", 0, t)  # never taken
        b.const(1, 10)
        b.ret(1)
        b.bind(t)
        b.const(1, 20)
        b.ret(1)
        g = build_hgraph(b.build())
        assert fold_constants(g)
        entry = g.blocks[g.entry_id]
        assert entry.terminator.kind == "goto"
        assert len(entry.successors) == 1

    def test_algebraic_identities(self):
        b = MethodBuilder("LT;->f", num_inputs=1, num_registers=4)
        b.const(1, 0)
        b.binop("add", 2, 0, 1)  # x + 0 -> move
        b.ret(2)
        g = build_hgraph(b.build())
        assert fold_constants(g)
        assert "move" in _kinds(g)


class TestCopyPropagationAndGVN:
    def test_copy_chain_collapses(self):
        b = MethodBuilder("LT;->f", num_inputs=1, num_registers=5)
        b.move(1, 0)
        b.move(2, 1)
        b.binop("add", 3, 2, 2)
        b.ret(3)
        g = build_hgraph(b.build())
        assert propagate_copies(g)
        add = next(i for blk in g.blocks.values() for i in blk.instructions if i.kind == "binop")
        assert add.uses == (0, 0)

    def test_gvn_reuses_expression(self):
        b = MethodBuilder("LT;->f", num_inputs=2, num_registers=6)
        b.binop("add", 2, 0, 1)
        b.binop("add", 3, 0, 1)  # same expression
        b.binop("mul", 4, 2, 3)
        b.ret(4)
        g = build_hgraph(b.build())
        assert value_number(g)
        kinds = _kinds(g)
        assert kinds.count("binop") == 2  # one add + the mul
        assert "move" in kinds

    def test_gvn_respects_stores(self):
        b = MethodBuilder("LT;->f", num_inputs=2, num_registers=8)
        b.new_instance(2, class_idx=1, num_fields=2)
        b.iget(3, 2, 0)
        b.iput(1, 2, 0)   # memory changes
        b.iget(4, 2, 0)   # must NOT be CSE'd with the first iget
        b.binop("sub", 5, 4, 3)
        b.ret(5)
        g = build_hgraph(b.build())
        value_number(g)
        kinds = _kinds(g)
        assert kinds.count("iget") == 2

    def test_gvn_reuses_loads_without_intervening_store(self):
        b = MethodBuilder("LT;->f", num_inputs=2, num_registers=8)
        b.new_instance(2, class_idx=1, num_fields=2)
        b.iput(0, 2, 0)
        b.iget(3, 2, 0)
        b.iget(4, 2, 0)   # same load, same memory epoch
        b.binop("add", 5, 3, 4)
        b.ret(5)
        g = build_hgraph(b.build())
        assert value_number(g)
        assert _kinds(g).count("iget") == 1


class TestDCE:
    def test_dead_pure_instruction_removed(self):
        b = MethodBuilder("LT;->f", num_inputs=2, num_registers=5)
        b.binop("add", 2, 0, 1)   # dead
        b.binop("sub", 3, 0, 1)
        b.ret(3)
        g = build_hgraph(b.build())
        assert eliminate_dead_code(g)
        assert _kinds(g).count("binop") == 1

    def test_call_with_dead_result_survives(self):
        callee = MethodBuilder("LT;->c", num_inputs=0, num_registers=1)
        callee.const(0, 1)
        callee.ret(0)
        b = MethodBuilder("LT;->f", num_inputs=0, num_registers=3)
        b.invoke_static("LT;->c", dst=0)  # result dead, call effectful
        b.const(1, 5)
        b.ret(1)
        g = build_hgraph(b.build())
        eliminate_dead_code(g)
        assert "invoke-static" in _kinds(g)

    def test_live_across_blocks_kept(self):
        b = MethodBuilder("LT;->f", num_inputs=1, num_registers=4)
        t = b.new_label()
        b.binop_lit("add", 1, 0, 5)
        b.if_z("eq", 0, t)
        b.ret(1)
        b.bind(t)
        b.ret(1)
        g = build_hgraph(b.build())
        eliminate_dead_code(g)
        assert "binop-lit" in _kinds(g)


class TestCFGPasses:
    def test_unreachable_removed(self):
        b = MethodBuilder("LT;->f", num_inputs=0, num_registers=2)
        end = b.new_label()
        b.goto(end)
        b.const(0, 1)  # unreachable
        b.bind(end)
        b.const(0, 2)
        b.ret(0)
        g = build_hgraph(b.build())
        n_before = len(g.blocks)
        assert remove_unreachable(g)
        assert len(g.blocks) < n_before

    def test_return_merging_single_exit(self):
        b = MethodBuilder("LT;->f", num_inputs=1, num_registers=4)
        t = b.new_label()
        b.if_z("eq", 0, t)
        b.const(1, 1)
        b.ret(1)
        b.bind(t)
        b.const(1, 2)
        b.ret(1)
        g = build_hgraph(b.build())
        assert merge_returns(g)
        returns = [blk for blk in g.blocks.values() if blk.terminator.kind == "return"]
        assert len(returns) == 1
        g.validate()

    def test_return_merging_noop_for_single_return(self):
        b = MethodBuilder("LT;->f", num_inputs=1, num_registers=2)
        b.ret(0)
        g = build_hgraph(b.build())
        assert not merge_returns(g)


class TestSemanticPreservation:
    """Passes must never change observable behaviour: interpret the
    original, compile+emulate the optimized graph, compare."""

    def test_random_programs_preserved(self):
        from repro.workloads import app_spec, generate_app
        from repro.core import CalibroConfig, build_app
        from repro.runtime import Emulator

        app = generate_app(app_spec("Meituan", scale=0.12))
        interp = Interpreter(
            app.dexfile, native_handlers=app.native_handlers, max_steps=100_000_000
        )
        build = build_app(app.dexfile, CalibroConfig.baseline())  # passes on
        emu = Emulator(build.oat, app.dexfile, native_handlers=app.native_handlers)
        rng = random.Random(3)
        for name in app.dexfile.method_names()[:40]:
            args = [rng.randint(0, 500), rng.randint(0, 500)]
            want = interp.call(name, args)
            got = emu.call(name, args)
            assert got.trap is None
            assert got.value == want, name

    def test_pass_manager_reaches_fixpoint(self):
        b = MethodBuilder("LT;->f", num_inputs=2, num_registers=8)
        b.const(2, 3)
        b.binop("add", 3, 0, 2)
        b.move(4, 3)
        b.binop("add", 5, 0, 2)
        b.binop("mul", 6, 4, 5)
        b.ret(6)
        g = build_hgraph(b.build())
        before = g.instruction_count()
        stats = PassManager().run(g)
        assert stats.instructions_after <= before
        assert stats.iterations >= 1
        g.validate()
