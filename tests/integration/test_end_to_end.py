"""System-level oracle: every Calibro configuration must preserve the
observable behaviour of every generated app.

Reference semantics: the dex interpreter.  Execution under test: the
emulator running the linked OAT.  This is the strongest correctness
statement the repository makes about the outliner + patcher + linker.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CalibroConfig, build_app
from repro.dex import Interpreter
from repro.profiling import profile_app
from repro.runtime import Emulator
from repro.workloads import app_spec, generate_app


def _expected(app):
    interp = Interpreter(
        app.dexfile, native_handlers=app.native_handlers, max_steps=200_000_000
    )
    return [interp.call(m, list(a)) for m, a in app.ui_script.iterate()]


def _run(build, app):
    emu = Emulator(build.oat, app.dexfile, native_handlers=app.native_handlers)
    return [emu.call(m, list(a)) for m, a in app.ui_script.iterate()]


CONFIGS = [
    CalibroConfig.baseline(),
    CalibroConfig.cto(),
    CalibroConfig.cto_ltbo(),
    CalibroConfig.cto_ltbo_plopti(4),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_ui_script_preserved(small_app, small_app_expected, config):
    build = build_app(small_app.dexfile, config)
    results = _run(build, small_app)
    assert all(r.trap is None for r in results)
    assert [r.value for r in results] == small_app_expected


def test_hot_filter_config_preserved(small_app, small_app_expected, baseline_build):
    report = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers,
    )
    build = build_app(small_app.dexfile, CalibroConfig.full(report.cycles, groups=4))
    results = _run(build, small_app)
    assert [r.value for r in results] == small_app_expected


@pytest.mark.parametrize("name,scale,seed_args", [
    ("Toutiao", 0.15, 11),
    ("Kuaishou", 0.12, 22),
    ("Fanqie", 0.15, 33),
])
def test_other_apps_preserved(name, scale, seed_args):
    """Different app populations (different seeds/sizes) through the
    most aggressive config."""
    app = generate_app(app_spec(name, scale))
    interp = Interpreter(
        app.dexfile, native_handlers=app.native_handlers, max_steps=200_000_000
    )
    build = build_app(app.dexfile, CalibroConfig.cto_ltbo())
    emu = Emulator(build.oat, app.dexfile, native_handlers=app.native_handlers)
    rng = random.Random(seed_args)
    for method in rng.sample(app.dexfile.method_names(), k=30):
        args = [rng.randint(0, 1000), rng.randint(0, 1000)]
        want = interp.call(method, args)
        got = emu.call(method, args)
        assert got.trap is None and got.value == want, method


def test_every_method_individually_preserved(small_app, ltbo_build):
    """Not just the UI script: call *every* method with fixed args."""
    interp = Interpreter(
        small_app.dexfile, native_handlers=small_app.native_handlers,
        max_steps=200_000_000,
    )
    emu = Emulator(ltbo_build.oat, small_app.dexfile,
                   native_handlers=small_app.native_handlers)
    for method in small_app.dexfile.method_names():
        want = interp.call(method, [17, 5])
        got = emu.call(method, [17, 5])
        assert got.trap is None and got.value == want, method


def test_outlining_reduces_size_but_adds_cycles(small_app, baseline_build, ltbo_build):
    """The paper's fundamental trade-off (Tables 4 vs 7): smaller text,
    more executed transfers."""
    base = _run(baseline_build, small_app)
    out = _run(ltbo_build, small_app)
    assert ltbo_build.text_size < baseline_build.text_size
    assert sum(r.steps for r in out) >= sum(r.steps for r in base)
