"""End-to-end trace coverage: the phase spans must account for the build.

If the phase tree said "compile 54%, outline 42%, link 4%" but those
summed to half the real wall time, every percentage in ``calibro
trace`` would be a lie.  This pins the accounting: the top-level phase
spans cover at least 95% of the root span, and the root span covers at
least 95% of the externally observed wall time.
"""

from __future__ import annotations

import time

from repro import observability as obs
from repro.core import CalibroConfig, build_app
from repro.workloads import app_spec, generate_app


def test_build_trace_phases_cover_wall_time():
    dexfile = generate_app(app_spec("Meituan", 0.3)).dexfile
    config = CalibroConfig.cto_ltbo_plopti(2)
    build_app(dexfile, config)  # warm caches so timing reflects steady state

    with obs.tracing():
        wall_start = time.perf_counter()
        build = build_app(dexfile, config)
        wall = time.perf_counter() - wall_start

    trace = build.trace
    assert trace is not None
    root = trace.find("build")
    assert root is not None

    # The root span vs the stopwatch around the call.
    assert root.duration >= 0.95 * wall

    # The three phases vs the root: dex2oat + ltbo + link leave at most
    # 5% of the build unattributed.
    phases = [trace.find(n) for n in ("build.dex2oat", "build.ltbo", "build.link")]
    assert all(p is not None for p in phases)
    assert sum(p.duration for p in phases) >= 0.95 * root.duration

    # The structured trace and the legacy timings dict agree exactly —
    # they are the same spans.
    assert build.timings["compile"] == phases[0].duration
    assert build.timings["ltbo"] == phases[1].duration
    assert build.timings["total"] == root.duration

    # Reconstructed PlOpti group spans: both partitions present, nested
    # under the outline span, each with its three-stage breakdown.
    outline = trace.find("ltbo.outline")
    groups = [s for s in outline.children if s.name == "ltbo.group"]
    assert len(groups) == 2
    for group in groups:
        stages = {c.name for c in group.children}
        assert stages == {
            "ltbo.group.tree_build",
            "ltbo.group.select",
            "ltbo.group.rewrite",
        }

    # Counters made it into the trace, and the headline ones are sane.
    assert trace.counters["dex2oat.methods"] > 0
    assert trace.counters["plopti.partitions"] == 2
    assert trace.counters["ltbo.bytes_saved"] > 0
