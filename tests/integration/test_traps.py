"""Trap behaviour must survive outlining: slowpaths still fire, with the
same exception kinds the interpreter raises."""

from __future__ import annotations

import pytest

from repro.core import CalibroConfig, build_app
from repro.dex import DexClass, DexError, DexFile, Interpreter, MethodBuilder
from repro.runtime import Emulator


def _trap_dex() -> DexFile:
    div = MethodBuilder("LT;->div", num_inputs=2, num_registers=3)
    div.binop("div", 2, 0, 1)
    div.ret(2)

    npe = MethodBuilder("LT;->npe", num_inputs=1, num_registers=3)
    npe.iget(1, 0, 0)
    npe.ret(1)

    bounds = MethodBuilder("LT;->bounds", num_inputs=2, num_registers=4)
    bounds.new_array(2, 0)
    bounds.aget(3, 2, 1)
    bounds.ret(3)

    # A few duplicated arithmetic bodies so LTBO actually outlines here.
    fillers = []
    for i in range(4):
        f = MethodBuilder(f"LT;->fill{i}", num_inputs=2, num_registers=4)
        f.binop("add", 2, 0, 1)
        f.binop("mul", 3, 2, 0)
        f.binop("xor", 3, 3, 1)
        f.binop("and", 2, 3, 0)
        f.binop("or", 2, 2, 1)
        f.ret(2)
        fillers.append(f.build())

    return DexFile(classes=[DexClass("LT;", [div.build(), npe.build(), bounds.build()] + fillers)])


@pytest.fixture(scope="module", params=["baseline", "cto_ltbo"])
def trap_setup(request):
    dex = _trap_dex()
    config = (
        CalibroConfig.baseline() if request.param == "baseline" else CalibroConfig.cto_ltbo()
    )
    build = build_app(dex, config)
    return dex, Emulator(build.oat, dex)


@pytest.mark.parametrize(
    "method,args,kind",
    [
        ("LT;->div", [5, 0], "div-zero"),
        ("LT;->npe", [0], "null-pointer"),
        ("LT;->bounds", [3, 7], "array-bounds"),
        ("LT;->bounds", [3, -1], "array-bounds"),
        ("LT;->bounds", [-1, 0], "negative-array-size"),
    ],
)
def test_traps_match_interpreter(trap_setup, method, args, kind):
    dex, emu = trap_setup
    interp = Interpreter(dex)
    with pytest.raises(DexError) as exc:
        interp.call(method, args)
    assert exc.value.kind == kind
    result = emu.call(method, args)
    assert result.trap == kind


@pytest.mark.parametrize(
    "method,args,expected",
    [
        ("LT;->div", [7, -2], -3),
        ("LT;->npe", None, None),  # placeholder replaced below
        ("LT;->bounds", [3, 2], 0),
    ],
)
def test_non_trapping_paths_still_work(trap_setup, method, args, expected):
    if args is None:
        pytest.skip("npe needs an object; covered by workload tests")
    dex, emu = trap_setup
    result = emu.call(method, args)
    assert result.trap is None and result.value == expected


def test_deep_recursion_hits_guest_stack_guard():
    b = MethodBuilder("LT;->rec", num_inputs=1, num_registers=4)
    stop = b.new_label()
    b.if_z("le", 0, stop)
    b.binop_lit("sub", 1, 0, 1)
    b.invoke_static("LT;->rec", args=(1,), dst=2)
    b.binop("add", 2, 2, 0)
    b.ret(2)
    b.bind(stop)
    b.const(2, 0)
    b.ret(2)
    dex = DexFile(classes=[DexClass("LT;", [b.build()])])
    build = build_app(dex, CalibroConfig.cto())
    emu = Emulator(build.oat, dex)
    assert emu.call("LT;->rec", [50]).value == sum(range(1, 51))
    deep = emu.call("LT;->rec", [1_000_000])
    assert deep.trap == "stack-overflow"
