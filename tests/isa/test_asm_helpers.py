"""Assembler convenience constructors."""

from __future__ import annotations

import pytest

from repro.isa import asm, decode, instructions as ins


def test_mov_imm_single_chunk():
    (i,) = asm.mov_imm(3, 0xBEEF)
    assert isinstance(i, ins.MoveWide) and i.op == "movz" and i.imm16 == 0xBEEF


def test_mov_imm_multi_chunk():
    seq = asm.mov_imm(3, 0x1234_0000_BEEF)
    assert [i.op for i in seq] == ["movz", "movk"]
    assert seq[0].hw == 0 and seq[1].hw == 2
    # Zero chunks are skipped.
    assert len(asm.mov_imm(3, 0x1_0000)) == 2  # movz #0 + movk hw=1


def test_mov_imm_rejects_negative_and_oversized():
    with pytest.raises(ValueError):
        asm.mov_imm(0, -1)
    with pytest.raises(ValueError):
        asm.mov_imm(0, 1 << 32, sf=False)


def test_mov_imm_32bit():
    seq = asm.mov_imm(1, 0xAABB_CCDD, sf=False)
    assert all(not i.sf for i in seq)
    assert len(seq) == 2


def test_cmp_aliases_set_flags_discard_result():
    c = asm.cmp_imm(5, 10)
    assert c.set_flags and c.rd == 31
    c = asm.cmp_reg(5, 6)
    assert c.set_flags and c.rd == 31


def test_memory_helpers_roundtrip():
    for instr in [
        asm.ldr(1, 2, 16),
        asm.str_(1, 2, 16, size=4),
        asm.stp_pre(29, 30, 31, -32),
        asm.ldr_pair_post(29, 30, 31, 32),
    ]:
        assert decode(instr.encode()) == instr


def test_alu_helpers():
    assert asm.add_imm(1, 2, 3).op == "add"
    assert asm.sub_imm(1, 2, 3).op == "sub"
    assert asm.add_reg(1, 2, 3).op == "add"
    assert asm.sub_reg(1, 2, 3).op == "sub"
    assert isinstance(asm.mul(1, 2, 3), ins.MAdd)
    assert isinstance(asm.sdiv(1, 2, 3), ins.SDiv)
