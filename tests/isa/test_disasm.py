"""Disassembler rendering, including the paper's Table 2 format."""

from __future__ import annotations

from repro.isa import asm, disassemble, format_instruction
from repro.isa import instructions as ins


def test_table2_style_rendering():
    """`0x138320: cbz w0, #+0xc (addr 0x13832c)` — the paper's listing."""
    instr = ins.Cbz(rt=0, offset=0xC, sf=False)
    assert format_instruction(instr, 0x138320) == "0x138320: cbz w0, #+0xc (addr 0x13832c)"


def test_plain_rendering_without_address():
    assert format_instruction(ins.Ret()) == "ret"
    assert format_instruction(asm.mov(3, 4)) == "mov x3, x4"


def test_embedded_data_becomes_word_directive():
    code = ins.Nop().encode_bytes() + b"\xff\xff\xff\xff"
    lines = disassemble(code, 0x1000)
    assert lines[0] == "0x1000: nop"
    assert lines[1] == "0x1004: .word 0xffffffff"


def test_cmp_alias_rendering():
    assert asm.cmp_imm(3, 5).render() == "cmp x3, #0x5"
    assert asm.cmp_reg(1, 2).render() == "cmp x1, x2"


def test_mov_alias_rendering():
    assert asm.mov(7, 9).render() == "mov x7, x9"


def test_pair_rendering_modes():
    pre = asm.stp_pre(29, 30, 31, -32)
    post = asm.ldr_pair_post(29, 30, 31, 32)
    assert pre.render() == "stp x29, x30, [sp, #-32]!"
    assert post.render() == "ldp x29, x30, [sp], #32"


def test_bcond_rendering():
    assert ins.BCond(cond=ins.Cond.HS, offset=8).render() == "b.hs #+0x8"


def test_tbz_uses_w_or_x_view_by_bit():
    assert ins.Tbz(rt=1, bit=3, offset=4).render().startswith("tbz w1")
    assert ins.Tbnz(rt=1, bit=40, offset=4).render().startswith("tbnz x1")
