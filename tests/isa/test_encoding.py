"""Encoder/decoder: golden A64 encodings and round-trip properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import DecodeError, asm, decode, decode_all, encode_all
from repro.isa import instructions as ins
from repro.isa._bits import FieldRangeError


class TestGoldenEncodings:
    """Bit-exact values checked against the ARMv8 reference."""

    @pytest.mark.parametrize(
        "instr,expected",
        [
            (ins.Ret(), 0xD65F03C0),
            (ins.Nop(), 0xD503201F),
            (ins.Bl(offset=8), 0x94000002),
            (ins.B(offset=-4), 0x17FFFFFF),
            (ins.Br(rn=16), 0xD61F0200),
            (ins.Blr(rn=30), 0xD63F03C0),
            (ins.MoveWide(op="movz", rd=0, imm16=0), 0xD2800000),
            (ins.MoveWide(op="movk", rd=0, imm16=0, hw=1), 0xF2A00000),
            (ins.LoadStoreImm(op="ldr", rt=30, rn=0, offset=0x20), 0xF940101E),
            (ins.LoadStoreImm(op="ldr", rt=31, rn=16, offset=0, size=4), 0xB940021F),
            (ins.AddSubImm(op="sub", rd=16, rn=31, imm12=2, shift12=True), 0xD1400BF0),
            (ins.LoadStorePair(op="stp", rt=29, rt2=30, rn=31, offset=-16, mode="pre"), 0xA9BF7BFD),
            (ins.LoadStorePair(op="ldp", rt=29, rt2=30, rn=31, offset=16, mode="post"), 0xA8C17BFD),
            (ins.Cbz(rt=0, offset=0xC, sf=False), 0x34000060),
            (ins.Brk(imm16=0), 0xD4200000),
        ],
    )
    def test_known_words(self, instr, expected):
        assert instr.encode() == expected

    def test_stack_check_pattern_words(self):
        """The paper's Fig. 4c sequence encodes to valid A64."""
        from repro.core.patterns import stack_check_pattern

        sub, probe = stack_check_pattern()
        assert decode(sub.encode()) == sub
        assert decode(probe.encode()) == probe
        assert "sub x16, sp, #0x2" in sub.render()
        assert "ldr wzr, [x16]" == probe.render()


_REG = st.integers(0, 30)
_REG31 = st.integers(0, 31)


def _roundtrip(instr: ins.Instruction) -> None:
    assert decode(instr.encode()) == instr


class TestRoundTrip:
    @given(op=st.sampled_from(["movz", "movk", "movn"]), rd=_REG31,
           imm=st.integers(0, 0xFFFF), hw=st.integers(0, 3))
    def test_movewide(self, op, rd, imm, hw):
        _roundtrip(ins.MoveWide(op=op, rd=rd, imm16=imm, hw=hw))

    @given(op=st.sampled_from(["add", "sub"]), rd=_REG31, rn=_REG31,
           imm=st.integers(0, 4095), sh=st.booleans(), flags=st.booleans(),
           sf=st.booleans())
    def test_addsub_imm(self, op, rd, rn, imm, sh, flags, sf):
        _roundtrip(ins.AddSubImm(op=op, rd=rd, rn=rn, imm12=imm, shift12=sh,
                                 set_flags=flags, sf=sf))

    @given(op=st.sampled_from(["add", "sub"]), rd=_REG31, rn=_REG31, rm=_REG31,
           flags=st.booleans(), sf=st.booleans())
    def test_addsub_reg(self, op, rd, rn, rm, flags, sf):
        _roundtrip(ins.AddSubReg(op=op, rd=rd, rn=rn, rm=rm, set_flags=flags, sf=sf))

    @given(op=st.sampled_from(["and", "orr", "eor"]), rd=_REG31, rn=_REG31, rm=_REG31)
    def test_logical(self, op, rd, rn, rm):
        _roundtrip(ins.LogicalReg(op=op, rd=rd, rn=rn, rm=rm))

    @given(rd=_REG31, rn=_REG31, rm=_REG31, ra=_REG31)
    def test_madd(self, rd, rn, rm, ra):
        _roundtrip(ins.MAdd(rd=rd, rn=rn, rm=rm, ra=ra))

    @given(op=st.sampled_from(["ldr", "str"]), rt=_REG31, rn=_REG31,
           idx=st.integers(0, 4095), size=st.sampled_from([4, 8]))
    def test_loadstore(self, op, rt, rn, idx, size):
        _roundtrip(ins.LoadStoreImm(op=op, rt=rt, rn=rn, offset=idx * size, size=size))

    @given(op=st.sampled_from(["ldp", "stp"]), rt=_REG31, rt2=_REG31, rn=_REG31,
           idx=st.integers(-64, 63), mode=st.sampled_from(["offset", "pre", "post"]))
    def test_pair(self, op, rt, rt2, rn, idx, mode):
        _roundtrip(ins.LoadStorePair(op=op, rt=rt, rt2=rt2, rn=rn, offset=idx * 8, mode=mode))

    @given(rt=_REG31, idx=st.integers(-(1 << 18), (1 << 18) - 1))
    def test_literal(self, rt, idx):
        _roundtrip(ins.LoadLiteral(rt=rt, offset=idx * 4))

    @given(rd=_REG31, off=st.integers(-(1 << 20), (1 << 20) - 1))
    def test_adr(self, rd, off):
        _roundtrip(ins.Adr(rd=rd, offset=off))

    @given(rd=_REG31, pages=st.integers(-(1 << 20), (1 << 20) - 1))
    def test_adrp(self, rd, pages):
        _roundtrip(ins.Adrp(rd=rd, page_offset=pages))

    @given(idx=st.integers(-(1 << 25), (1 << 25) - 1))
    def test_b(self, idx):
        _roundtrip(ins.B(offset=idx * 4))

    @given(idx=st.integers(-(1 << 25), (1 << 25) - 1))
    def test_bl(self, idx):
        _roundtrip(ins.Bl(offset=idx * 4))

    @given(cond=st.integers(0, 15), idx=st.integers(-(1 << 18), (1 << 18) - 1))
    def test_bcond(self, cond, idx):
        _roundtrip(ins.BCond(cond=cond, offset=idx * 4))

    @given(rt=_REG31, idx=st.integers(-(1 << 18), (1 << 18) - 1),
           sf=st.booleans(), nz=st.booleans())
    def test_cb(self, rt, idx, sf, nz):
        cls = ins.Cbnz if nz else ins.Cbz
        _roundtrip(cls(rt=rt, offset=idx * 4, sf=sf))

    @given(rt=_REG31, bit=st.integers(0, 63), idx=st.integers(-(1 << 13), (1 << 13) - 1),
           nz=st.booleans())
    def test_tb(self, rt, bit, idx, nz):
        cls = ins.Tbnz if nz else ins.Tbz
        _roundtrip(cls(rt=rt, bit=bit, offset=idx * 4))

    @given(rn=_REG31)
    def test_branch_reg(self, rn):
        _roundtrip(ins.Br(rn=rn))
        _roundtrip(ins.Blr(rn=rn))
        _roundtrip(ins.Ret(rn=rn))

    @given(imm=st.integers(0, 0xFFFF))
    def test_brk(self, imm):
        _roundtrip(ins.Brk(imm16=imm))


class TestFieldValidation:
    def test_branch_offset_must_be_aligned(self):
        with pytest.raises(FieldRangeError):
            ins.B(offset=2).encode()

    def test_branch_offset_range(self):
        with pytest.raises(FieldRangeError):
            ins.BCond(cond=0, offset=1 << 21).encode()

    def test_load_offset_alignment(self):
        with pytest.raises(FieldRangeError):
            ins.LoadStoreImm(op="ldr", rt=0, rn=1, offset=3).encode()

    def test_pair_offset_range(self):
        with pytest.raises(FieldRangeError):
            ins.LoadStorePair(op="stp", rt=0, rt2=1, rn=31, offset=8 * 64, mode="pre").encode()

    def test_movewide_hw_range_32bit(self):
        with pytest.raises(FieldRangeError):
            ins.MoveWide(op="movz", rd=0, imm16=1, hw=2, sf=False).encode()

    def test_adrp_patch_requires_page_alignment(self):
        with pytest.raises(FieldRangeError):
            ins.Adrp(rd=0, page_offset=0).with_target_offset(100)


class TestDecoder:
    def test_unknown_word_raises(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)

    def test_zero_word_raises(self):
        with pytest.raises(DecodeError):
            decode(0)

    def test_decode_all_and_encode_all_inverse(self):
        stream = [ins.Nop(), ins.Ret(), asm.mov(1, 2), asm.ldr(3, 4, 8)]
        blob = encode_all(stream)
        assert decode_all(blob) == stream

    def test_decode_all_rejects_misaligned(self):
        with pytest.raises(ValueError):
            decode_all(b"\x00\x00\x00")

    @given(word=st.integers(0, (1 << 32) - 1))
    @settings(max_examples=300)
    def test_decode_never_misencodes(self, word):
        """Anything that decodes must re-encode to the same word."""
        try:
            instr = decode(word)
        except DecodeError:
            return
        assert instr.encode() == word

    def test_non_pc_relative_has_no_target(self):
        with pytest.raises(AttributeError):
            _ = ins.Nop().target_offset
        with pytest.raises(AttributeError):
            ins.Ret().with_target_offset(4)
