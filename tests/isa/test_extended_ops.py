"""Variable shifts and conditional select: encodings + round trips."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import decode, instructions as ins

_REG = st.integers(0, 31)


class TestGolden:
    def test_lslv(self):
        assert ins.ShiftVar(op="lsl", rd=1, rn=2, rm=3).encode() == 0x9AC32041

    def test_csel(self):
        assert ins.CSel(rd=1, rn=2, rm=3, cond=ins.Cond.LT).encode() == 0x9A83B041

    def test_cset_alias_rendering(self):
        cset = ins.CSel(rd=1, rn=31, rm=31, cond=ins.Cond.NE, increment=True)
        assert cset.render() == "cset x1, eq"

    def test_shift_rendering(self):
        assert ins.ShiftVar(op="asr", rd=4, rn=5, rm=6, sf=False).render() == "asr w4, w5, w6"


class TestRoundTrip:
    @given(op=st.sampled_from(["lsl", "lsr", "asr"]), rd=_REG, rn=_REG, rm=_REG,
           sf=st.booleans())
    def test_shiftvar(self, op, rd, rn, rm, sf):
        i = ins.ShiftVar(op=op, rd=rd, rn=rn, rm=rm, sf=sf)
        assert decode(i.encode()) == i

    @given(rd=_REG, rn=_REG, rm=_REG, cond=st.integers(0, 15),
           inc=st.booleans(), sf=st.booleans())
    def test_csel(self, rd, rn, rm, cond, inc, sf):
        i = ins.CSel(rd=rd, rn=rn, rm=rm, cond=cond, increment=inc, sf=sf)
        assert decode(i.encode()) == i


class TestClassification:
    def test_not_terminators_or_calls(self):
        s = ins.ShiftVar(op="lsl", rd=1, rn=2, rm=3)
        c = ins.CSel(rd=1, rn=2, rm=3, cond=0)
        for i in (s, c):
            assert not i.is_terminator and not i.is_call
            assert not i.is_pc_relative and not i.is_indirect_jump

    def test_lr_detection(self):
        from repro.core.detect import touches_lr

        assert touches_lr(ins.ShiftVar(op="lsl", rd=30, rn=2, rm=3))
        assert touches_lr(ins.CSel(rd=1, rn=30, rm=3, cond=0))
        assert not touches_lr(ins.ShiftVar(op="lsl", rd=1, rn=2, rm=3))
