"""Register naming and ART conventions."""

from __future__ import annotations

import pytest

from repro.isa import registers as regs


def test_art_conventions_match_paper():
    """Fig. 4: ArtMethod in x0, thread in x19, branch target in x30."""
    assert regs.ART_METHOD_REG == 0
    assert regs.ART_THREAD_REG == 19
    assert regs.ART_BRANCH_REG == 30
    assert regs.IP0 == 16  # the stack-check scratch register


def test_reg_name_views():
    assert regs.reg_name(0) == "x0"
    assert regs.reg_name(0, sf=False) == "w0"
    assert regs.reg_name(31) == "xzr"
    assert regs.reg_name(31, sf=False) == "wzr"
    assert regs.reg_name(31, sp=True) == "sp"
    assert regs.reg_name(31, sf=False, sp=True) == "wsp"


def test_reg_name_rejects_out_of_range():
    with pytest.raises(ValueError):
        regs.reg_name(32)


def test_x_constructor():
    assert regs.x(19) == 19
    with pytest.raises(ValueError):
        regs.x(31)


def test_thread_register_not_allocatable():
    assert regs.ART_THREAD_REG not in regs.ALLOCATABLE
    assert regs.ART_METHOD_REG not in regs.ALLOCATABLE
    assert regs.IP0 not in regs.ALLOCATABLE


def test_callee_saved_contains_fp_lr():
    assert regs.FP in regs.CALLEE_SAVED
    assert regs.LR in regs.CALLEE_SAVED
