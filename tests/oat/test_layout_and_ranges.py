"""Layout constants and linker range/error behaviour."""

from __future__ import annotations

import pytest

from repro.compiler import CompiledMethod, Relocation, RelocKind
from repro.core.metadata import MethodMetadata
from repro.isa import encode_all, instructions as ins
from repro.oat import LinkError, layout, link


class TestLayoutConstants:
    def test_address_spaces_disjoint(self):
        regions = [
            (layout.TEXT_BASE, layout.TEXT_BASE + 0x100_0000),
            (layout.DATA_BASE, layout.DATA_BASE + 0x100_0000),
            (layout.THREAD_BASE, layout.THREAD_BASE + 0x1_0000),
            (layout.HEAP_BASE, layout.HEAP_BASE + layout.HEAP_SIZE),
            (layout.STACK_TOP - layout.STACK_SIZE, layout.STACK_TOP),
            (layout.NATIVE_STUB_BASE, layout.NATIVE_STUB_BASE + 0x1000),
        ]
        for i, (a0, a1) in enumerate(regions):
            for b0, b1 in regions[i + 1 :]:
                assert a1 <= b0 or b1 <= a0, "address regions overlap"

    def test_entrypoint_offsets_unique_and_aligned(self):
        offsets = list(layout.ENTRYPOINT_OFFSETS.values())
        assert len(set(offsets)) == len(offsets)
        assert all(off % 8 == 0 for off in offsets)

    def test_stack_guard_is_the_paper_constant(self):
        assert layout.STACK_GUARD_SIZE == 0x2000  # Fig. 4c's #0x2000

    def test_unknown_entrypoint_raises(self):
        with pytest.raises(KeyError):
            layout.entrypoint_offset("pDoesNotExist")


class TestLinkerErrors:
    def _m(self, name, body, relocs=()):
        code = encode_all(body)
        return CompiledMethod(
            name=name, code=code, relocations=list(relocs),
            metadata=MethodMetadata(method_name=name, code_size=len(code)),
        )

    def test_call26_on_non_bl_rejected(self):
        m = self._m(
            "bad", [ins.Nop(), ins.Ret()],
            relocs=[Relocation(offset=0, kind=RelocKind.CALL26, symbol="bad")],
        )
        with pytest.raises(LinkError, match="non-bl"):
            link([m], check_stackmaps=False)

    def test_page21_on_non_adrp_rejected(self):
        m = self._m(
            "bad", [ins.Nop(), ins.Ret()],
            relocs=[Relocation(offset=0, kind=RelocKind.ADRP_PAGE21, symbol="bad")],
        )
        with pytest.raises(LinkError, match="non-adrp"):
            link([m], check_stackmaps=False)

    def test_lo12_on_non_add_rejected(self):
        m = self._m(
            "bad", [ins.Nop(), ins.Ret()],
            relocs=[Relocation(offset=0, kind=RelocKind.ADD_LO12, symbol="bad")],
        )
        with pytest.raises(LinkError, match="non-add"):
            link([m], check_stackmaps=False)

    def test_unknown_reloc_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="relocation kind"):
            Relocation(offset=0, kind="weird", symbol="x")

    def test_stackmap_outside_method_rejected(self):
        from repro.compiler import StackMapTable

        table = StackMapTable(method_name="bad")
        table.add(native_pc=400, dex_pc=0)
        m = self._m("bad", [ins.Ret()])
        m.stackmaps = table
        with pytest.raises(LinkError, match="outside method"):
            link([m])


class TestBitsHelpers:
    def test_sext(self):
        from repro.isa._bits import sext

        assert sext(0b111, 3) == -1
        assert sext(0b011, 3) == 3
        assert sext(0x80, 8) == -128

    def test_check_sint_bounds(self):
        from repro.isa._bits import FieldRangeError, check_sint

        assert check_sint(-1, 4, "x") == 0b1111
        with pytest.raises(FieldRangeError):
            check_sint(8, 4, "x")
        with pytest.raises(FieldRangeError):
            check_sint(-9, 4, "x")

    def test_bits_extraction(self):
        from repro.isa._bits import bits

        assert bits(0b1011_0000, 7, 4) == 0b1011
        assert bits(0xFFFFFFFF, 31, 31) == 1
