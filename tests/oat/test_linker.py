"""Linking phase: layout, relocation resolution, StackMap checking."""

from __future__ import annotations

import pytest

from repro.compiler import CompiledMethod, Relocation, RelocKind, dex2oat
from repro.dex import DexClass, DexFile, MethodBuilder
from repro.isa import decode, decode_all, instructions as ins
from repro.oat import LinkError, layout, link


def _dex_with_call():
    callee = MethodBuilder("LT;->callee", num_inputs=2, num_registers=3)
    callee.binop("add", 2, 0, 1)
    callee.ret(2)
    caller = MethodBuilder("LT;->caller", num_inputs=2, num_registers=4)
    caller.invoke_static("LT;->callee", args=(0, 1), dst=2)
    caller.ret(2)
    return DexFile(classes=[DexClass("LT;", [callee.build(), caller.build()])],
                   string_table=["hello"])


class TestLayout:
    def test_methods_are_16_aligned(self, small_app):
        oat = link(dex2oat(small_app.dexfile, cto=True).methods, small_app.dexfile)
        for record in oat.methods.values():
            assert record.offset % 16 == 0

    def test_entry_addresses_consistent(self):
        dex = _dex_with_call()
        oat = link(dex2oat(dex).methods, dex)
        for name, record in oat.methods.items():
            assert oat.entry_address(name) == oat.text_base + record.offset

    def test_artmethod_entrypoint_points_at_code(self):
        dex = _dex_with_call()
        oat = link(dex2oat(dex).methods, dex)
        addr = oat.artmethod_address("LT;->callee")
        off = addr - oat.data_base + layout.ART_METHOD_ENTRY_OFFSET
        entry = int.from_bytes(oat.data[off : off + 8], "little")
        assert entry == oat.entry_address("LT;->callee")

    def test_duplicate_symbols_rejected(self):
        m = CompiledMethod(name="dup", code=ins.Ret().encode_bytes())
        with pytest.raises(LinkError, match="duplicate"):
            link([m, m])


class TestRelocations:
    def test_java_call_chain_binds_to_callee(self):
        """Java calls are indirect: literal pool → ArtMethod → entry.
        Every link in that chain must resolve to the callee's code."""
        dex = _dex_with_call()
        oat = link(dex2oat(dex).methods, dex)
        record = oat.methods["LT;->caller"]
        code = oat.method_code("LT;->caller")
        # Find the PC-relative literal load of the ArtMethod pointer.
        lit = None
        for off in range(0, len(code), 4):
            try:
                instr = decode(int.from_bytes(code[off : off + 4], "little"))
            except Exception:
                continue  # literal pool data
            if isinstance(instr, ins.LoadLiteral):
                lit = (off, instr)
        assert lit is not None
        off, instr = lit
        pool_off = record.offset + off + instr.target_offset
        artmethod = int.from_bytes(oat.text[pool_off : pool_off + 8], "little")
        assert artmethod == oat.artmethod_address("LT;->callee")
        data_off = artmethod - oat.data_base + layout.ART_METHOD_ENTRY_OFFSET
        entry = int.from_bytes(oat.data[data_off : data_off + 8], "little")
        assert entry == oat.entry_address("LT;->callee")

    def test_call26_binds_bl_to_thunks(self):
        """With CTO enabled, pattern sites become `bl` to thunks; the
        linker must bind those to the thunk entries."""
        dex = _dex_with_call()
        result = dex2oat(dex, cto=True)
        oat = link(result.methods, dex)
        record = oat.methods["LT;->caller"]
        code = oat.method_code("LT;->caller")
        bl_targets = set()
        for off in range(0, len(code), 4):
            try:
                instr = decode(int.from_bytes(code[off : off + 4], "little"))
            except Exception:
                continue
            if isinstance(instr, ins.Bl):
                bl_targets.add(oat.text_base + record.offset + off + instr.target_offset)
        thunk_entries = {
            oat.entry_address(n) for n in oat.methods if n.startswith("__cto$")
        }
        assert bl_targets and bl_targets <= thunk_entries

    def test_adrp_add_resolve_string_address(self):
        b = MethodBuilder("LT;->s", num_inputs=0, num_registers=2)
        b.const_string(0, 0)
        b.ret(0)
        dex = DexFile(classes=[DexClass("LT;", [b.build()])], string_table=["greeting"])
        oat = link(dex2oat(dex).methods, dex)
        record = oat.methods["LT;->s"]
        instrs = decode_all(oat.method_code("LT;->s"))
        adrp_idx, adrp = next(
            (i, x) for i, x in enumerate(instrs) if isinstance(x, ins.Adrp)
        )
        add = instrs[adrp_idx + 1]
        assert isinstance(add, ins.AddSubImm) and add.op == "add"
        pc = oat.text_base + record.offset + adrp_idx * 4
        resolved = ((pc & ~0xFFF) + adrp.page_offset * 4096) + add.imm12
        assert resolved == oat.data_symbols["data:string:0"]
        # ... and the string bytes are actually there.
        data_off = resolved - oat.data_base
        assert oat.data[data_off : data_off + 8] == b"greeting"

    def test_undefined_symbol_raises(self):
        m = CompiledMethod(
            name="lonely",
            code=ins.Bl(offset=0).encode_bytes() + ins.Ret().encode_bytes(),
            relocations=[Relocation(offset=0, kind=RelocKind.CALL26, symbol="ghost")],
        )
        with pytest.raises(LinkError, match="undefined symbol"):
            link([m])

    def test_local_abs64_jump_table(self, small_app):
        """Switch methods' jump tables hold absolute in-method addresses."""
        result = dex2oat(small_app.dexfile, cto=True)
        switchers = [
            m for m in result.methods
            if m.metadata and m.metadata.has_indirect_jump and not m.name.startswith("__cto")
        ]
        assert switchers, "workload should contain switch methods"
        oat = link(result.methods, small_app.dexfile)
        m = switchers[0]
        record = oat.methods[m.name]
        for reloc in m.relocations:
            if reloc.kind != RelocKind.LOCAL_ABS64:
                continue
            place = record.offset + reloc.offset
            value = int.from_bytes(oat.text[place : place + 8], "little")
            assert oat.text_base + record.offset <= value < oat.text_base + record.end


class TestStackMapCheck:
    def test_consistent_maps_pass(self, ltbo_build):
        # ltbo_build linked with check_stackmaps=True already; re-check.
        from repro.oat.linker import _check_stackmaps

        _check_stackmaps(ltbo_build.oat)

    def test_corrupted_map_detected(self):
        dex = _dex_with_call()
        methods = dex2oat(dex).methods
        caller = next(m for m in methods if m.name == "LT;->caller")
        caller.stackmaps.entries[0] = type(caller.stackmaps.entries[0])(
            native_pc=caller.stackmaps.entries[0].native_pc + 4,
            dex_pc=0,
        )
        with pytest.raises(LinkError, match="stackmap"):
            link(methods, dex)
