"""OAT file model: serialisation round-trip and queries."""

from __future__ import annotations

import pytest

from repro.compiler import dex2oat
from repro.oat import OatFile, link


def test_serialisation_roundtrip(small_app):
    oat = link(dex2oat(small_app.dexfile, cto=True).methods, small_app.dexfile)
    blob = oat.to_bytes()
    back = OatFile.from_bytes(blob)
    assert back.text == oat.text
    assert back.data == oat.data
    assert back.text_base == oat.text_base
    assert set(back.methods) == set(oat.methods)
    for name, record in oat.methods.items():
        other = back.methods[name]
        assert (other.offset, other.size, other.frame_size) == (
            record.offset, record.size, record.frame_size,
        )
        original_pcs = [e.native_pc for e in record.stackmaps.entries] if record.stackmaps else []
        assert [e.native_pc for e in other.stackmaps.entries] == original_pcs
    assert back.data_symbols == oat.data_symbols


def test_bad_magic_rejected():
    with pytest.raises(ValueError, match="magic"):
        OatFile.from_bytes(b"NOTANOAT" + b"\x00" * 64)


def test_disk_size_tracks_text_size(small_app, baseline_build, ltbo_build):
    """Table 4's "size on disk": the serialised image's text segment is
    what shrinks (side-table JSON overhead is scale-dependent, so the
    comparison is on the deserialised segment, as `pm compile` + segment
    measurement does in the paper)."""
    base = OatFile.from_bytes(baseline_build.oat.to_bytes())
    out = OatFile.from_bytes(ltbo_build.oat.to_bytes())
    assert out.text_size < base.text_size


def test_method_at_address(baseline_build):
    oat = baseline_build.oat
    name, record = next(iter(oat.methods.items()))
    mid = oat.text_base + record.offset + (record.size // 8) * 4
    found = oat.method_at_address(mid)
    assert found is not None and found.name == name
    assert oat.method_at_address(oat.text_base - 4) is None


def test_text_and_data_sizes(baseline_build):
    oat = baseline_build.oat
    assert oat.text_size == len(oat.text) > 0
    assert oat.data_size == len(oat.data) > 0
