"""Chrome/Perfetto export: the invariants every viewer relies on."""

from __future__ import annotations

import json

from repro.observability import Span, Trace, chrome_events, trace_to_chrome, write_chrome


def _distributed_trace() -> Trace:
    """Client (pid 100) -> server (pid 200) -> shard (pid 300), plus two
    same-pid siblings sharing a start so the nudge path is exercised."""
    shard = Span(
        name="service.shard.run",
        start=0.2,
        duration=0.3,
        span_id="c" * 16,
        parent_id="b" * 16,
        pid=300,
        attrs={"shard": 0},
    )
    twin_a = Span(
        name="ltbo.group", start=0.15, duration=0.1, span_id="d" * 16,
        parent_id="b" * 16, pid=200,
    )
    twin_b = Span(
        name="ltbo.group", start=0.15, duration=0.1, span_id="e" * 16,
        parent_id="b" * 16, pid=200,
    )
    server = Span(
        name="service.server.request",
        start=0.1,
        duration=0.8,
        span_id="b" * 16,
        parent_id="a" * 16,
        pid=200,
        children=[twin_a, twin_b, shard],
    )
    root = Span(
        name="service.client.build",
        start=0.05,
        duration=1.0,
        span_id="a" * 16,
        pid=100,
        children=[server],
    )
    return Trace(
        spans=[root],
        meta={"trace_id": "ab" * 16, "pid": 100, "config": "CTO+LTBO"},
    )


def _span_count(trace: Trace) -> int:
    return sum(1 for root in trace.spans for _ in root.walk())


def test_every_span_becomes_one_complete_event():
    trace = _distributed_trace()
    slices = [e for e in chrome_events(trace) if e["ph"] == "X"]
    assert len(slices) == _span_count(trace)
    for event in slices:
        assert event["name"]
        assert event["dur"] >= 0.0
        assert event["ts"] >= 0.0
        assert isinstance(event["pid"], int)


def test_timestamps_are_zero_based_and_strictly_increasing_per_row():
    events = chrome_events(_distributed_trace())
    slices = [e for e in events if e["ph"] == "X"]
    assert min(e["ts"] for e in slices) == 0.0
    rows: dict[tuple[int, int], list[float]] = {}
    for event in slices:
        rows.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
    for ts_list in rows.values():
        assert all(a < b for a, b in zip(ts_list, ts_list[1:])), ts_list


def test_every_pid_gets_metadata_rows():
    events = chrome_events(_distributed_trace())
    pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert pids == {100, 200, 300}
    named = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert set(named) == pids
    assert named[100].startswith("calibro (")  # the trace's own process
    assert named[300].startswith("calibro worker (")


def test_flow_pairs_only_across_pid_boundaries():
    events = chrome_events(_distributed_trace())
    starts = [e for e in events if e["ph"] == "s"]
    ends = [e for e in events if e["ph"] == "f"]
    # Two pid crossings: client->server and server->shard.  The two
    # same-pid twins must NOT get arrows.
    assert len(starts) == len(ends) == 2
    assert {e["id"] for e in starts} == {"b" * 16, "c" * 16}
    by_id = {e["id"]: e for e in starts}
    for end in ends:
        assert end["bp"] == "e"
        start = by_id[end["id"]]
        assert start["pid"] != end["pid"]


def test_trace_to_chrome_document_shape():
    doc = trace_to_chrome(_distributed_trace())
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["trace_id"] == "ab" * 16
    assert doc["otherData"]["config"] == "CTO+LTBO"
    assert doc["traceEvents"]


def test_write_chrome_emits_loadable_json(tmp_path):
    path = write_chrome(_distributed_trace(), tmp_path / "trace.chrome.json")
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert {e["ph"] for e in doc["traceEvents"]} == {"M", "X", "s", "f"}


def test_empty_trace_exports_no_events():
    assert chrome_events(Trace()) == []


def test_pidless_spans_inherit_the_trace_pid():
    trace = Trace(
        spans=[Span(name="build", start=0.0, duration=1.0)],
        meta={"pid": 42},
    )
    (event,) = [e for e in chrome_events(trace) if e["ph"] == "X"]
    assert event["pid"] == 42
