"""TraceContext: the identity one request carries across processes."""

from __future__ import annotations

import pytest

from repro.core.errors import CalibroError
from repro.observability import TRACE_CONTEXT_ENV, TraceContext


def test_new_mints_a_root_context():
    ctx = TraceContext.new()
    assert len(ctx.trace_id) == 32
    assert set(ctx.trace_id) <= set("0123456789abcdef")
    assert ctx.span_id == ""  # root: no upstream parent
    assert ctx.sampled is True
    assert TraceContext.new().trace_id != ctx.trace_id


def test_child_keeps_the_trace_and_swaps_the_parent():
    ctx = TraceContext.new()
    child = ctx.child("00deadbeef00cafe")
    assert child.trace_id == ctx.trace_id
    assert child.span_id == "00deadbeef00cafe"
    assert child.sampled == ctx.sampled


@pytest.mark.parametrize("trace_id", [
    "", "short", "X" * 32, "ABCDEF" + "0" * 26,  # uppercase refused
    "0" * 31, "0" * 33,
])
def test_malformed_trace_id_is_refused(trace_id):
    with pytest.raises(CalibroError, match="trace_id"):
        TraceContext(trace_id=trace_id)


def test_malformed_span_id_is_refused():
    with pytest.raises(CalibroError, match="span_id"):
        TraceContext(trace_id="ab" * 16, span_id="nope")


def test_wire_round_trip():
    ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8, sampled=False)
    back = TraceContext.from_dict(ctx.to_dict())
    assert back == ctx
    # A root context omits span_id from the wire document entirely.
    root = TraceContext(trace_id="ef" * 16)
    assert "span_id" not in root.to_dict()
    assert TraceContext.from_dict(root.to_dict()) == root


def test_from_dict_refuses_non_mapping():
    with pytest.raises(CalibroError, match="mapping"):
        TraceContext.from_dict(["not", "a", "dict"])


def test_env_round_trip_with_and_without_parent():
    parented = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
    assert parented.to_env() == f"{'ab' * 16}-{'cd' * 8}-01"
    assert TraceContext.from_spec(parented.to_env()) == parented

    root = TraceContext(trace_id="ab" * 16, sampled=False)
    assert root.to_env() == f"{'ab' * 16}-{'0' * 16}-00"
    assert TraceContext.from_spec(root.to_env()) == root


def test_from_env_reads_the_variable():
    ctx = TraceContext(trace_id="12" * 16, span_id="34" * 8)
    environ = {TRACE_CONTEXT_ENV: ctx.to_env()}
    assert TraceContext.from_env(environ) == ctx
    assert TraceContext.from_env({}) is None
    assert TraceContext.from_env({TRACE_CONTEXT_ENV: "  "}) is None


@pytest.mark.parametrize("spec", [
    "not-a-context", "a-b", "x" * 32 + "-" + "0" * 16 + "-01",
    "ab" * 16 + "-" + "0" * 16 + "-7f",
])
def test_malformed_env_value_raises(spec):
    with pytest.raises(CalibroError):
        TraceContext.from_env({TRACE_CONTEXT_ENV: spec})


def test_tracer_inherits_the_context():
    from repro.observability import Tracer

    ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
    tracer = Tracer(context=ctx)
    assert tracer.trace_id == ctx.trace_id
    with tracer.span("root") as root:
        pass
    # The first span parents under the upstream span id.
    assert root.parent_id == ctx.span_id
    assert tracer.snapshot().meta["trace_id"] == ctx.trace_id


def test_child_context_points_at_the_open_span():
    from repro.observability import Tracer

    tracer = Tracer()
    assert tracer.child_context() == tracer.context  # nothing open
    with tracer.span("work") as span:
        ctx = tracer.child_context()
        assert ctx.trace_id == tracer.trace_id
        assert ctx.span_id == span.span_id


# -- sampled=False downgrades span recording ----------------------------------


def test_unsampled_context_drops_spans_at_export():
    """``sampled=False`` must downgrade span recording: callers still
    get live span objects to time against, registries still aggregate
    exactly, but the snapshot ships no span tree and flags itself."""
    from repro import observability as obs
    from repro.observability import Tracer

    ctx = TraceContext(trace_id="ab" * 16, sampled=False)
    tracer = Tracer(context=ctx)
    with obs.tracing(tracer):
        with obs.span("service.build", label="x") as span:
            obs.counter_add("service.builds")
            obs.gauge_set("service.shard.count", 2)
            obs.histogram_observe("service.cache.lookup_seconds", 0.01)
        assert span.name == "service.build"  # collection stayed live
    snapshot = tracer.snapshot()
    assert snapshot.spans == []
    assert snapshot.meta["sampled"] is False
    assert snapshot.meta["trace_id"] == ctx.trace_id
    assert snapshot.counters["service.builds"] == 1
    assert snapshot.gauges["service.shard.count"] == 2
    assert snapshot.histograms["service.cache.lookup_seconds"].count == 1


def test_sampled_snapshot_shape_is_unchanged():
    from repro import observability as obs
    from repro.observability import Tracer

    tracer = Tracer()  # default root context: sampled
    with obs.tracing(tracer):
        with obs.span("service.build"):
            pass
    snapshot = tracer.snapshot()
    assert len(snapshot.spans) == 1
    assert "sampled" not in snapshot.meta  # no new key on the hot path


def test_unsampled_request_stays_unsampled_across_shards():
    """One unsampled request through the shard executor: the children's
    counters still merge into the supervising registries, but neither
    the children nor the supervisor export any spans."""
    from repro import observability as obs
    from repro.observability import Tracer
    from repro.service import ShardExecutor
    from tests.service.test_shard import _double

    ctx = TraceContext(trace_id="cd" * 16, sampled=False)
    tracer = Tracer(context=ctx)
    with obs.tracing(tracer):
        with ShardExecutor(shards=2) as executor:
            assert executor.map_groups(_double, [7, 7, 7, 7]) == [14] * 4
    snapshot = tracer.snapshot()
    assert snapshot.spans == []
    assert snapshot.meta["sampled"] is False
    # The shard children inherited the unsampled flag via child_context
    # yet their registries merged back exactly.
    assert snapshot.counters.get("service.shard.memo_hits") == 2
