"""Trace/ledger diffing and the regression rules."""

from __future__ import annotations

import pytest

from repro.observability import (
    Delta,
    DiffReport,
    LedgerEntry,
    Span,
    Trace,
    diff_entries,
    diff_traces,
)


def _trace(durations: dict[str, float], counters: dict[str, int] | None = None):
    spans = [
        Span(name=name, start=0.0, duration=seconds)
        for name, seconds in durations.items()
    ]
    return Trace(spans=spans, counters=dict(counters or {}), gauges={}, meta={})


def _entry(after=8000, wall=1.0, before=10000):
    return LedgerEntry(config="c", engine="e", text_size_before=before,
                       text_size_after=after, wall_seconds=wall)


# -- Delta ------------------------------------------------------------------


def test_delta_ratio_handles_zero_baselines():
    assert Delta("x", 2.0, 3.0).ratio == pytest.approx(0.5)
    assert Delta("x", 0.0, 0.0).ratio == 0.0
    assert Delta("x", 0.0, 1.0).ratio == float("inf")


# -- trace diffing ----------------------------------------------------------


def test_identical_traces_have_no_regressions():
    trace = _trace({"build": 1.0, "build.link": 0.2},
                   {"link.text_bytes": 5000})
    report = diff_traces(trace, trace)
    assert not report.has_regressions
    assert report.regression_list() == []


def test_slower_phase_beyond_threshold_and_floor_is_flagged():
    before = _trace({"build": 1.0})
    after = _trace({"build": 1.5})
    report = diff_traces(before, after, threshold=0.05)
    [delta] = report.regression_list()
    assert delta.name == "build"
    assert "REGRESSION" in report.render()


def test_small_absolute_growth_is_noise_not_regression():
    """A 50% swing on a 3 ms phase stays under the min_seconds floor."""
    report = diff_traces(_trace({"tiny": 0.003}), _trace({"tiny": 0.0045}))
    assert not report.has_regressions
    # ... but an explicit floor of zero restores pure-relative gating.
    strict = diff_traces(_trace({"tiny": 0.003}), _trace({"tiny": 0.0045}),
                         min_seconds=0.0)
    assert strict.has_regressions


def test_phase_present_on_one_side_only_is_reported_not_flagged():
    report = diff_traces(_trace({"build": 1.0}),
                         _trace({"build": 1.0, "extra": 9.0}))
    assert not report.has_regressions
    names = [d.name for d in report.phases]
    assert "extra" in names


def test_text_growth_is_a_size_regression():
    before = _trace({}, {"link.text_bytes": 10000})
    after = _trace({}, {"link.text_bytes": 11000})
    report = diff_traces(before, after)
    [delta] = report.regression_list()
    assert delta.name == "link.text_bytes"
    # Growth within the threshold is fine.
    ok = diff_traces(before, _trace({}, {"link.text_bytes": 10300}))
    assert not ok.has_regressions


def test_bytes_saved_shrinkage_is_a_size_regression():
    before = _trace({}, {"ltbo.bytes_saved": 2000})
    after = _trace({}, {"ltbo.bytes_saved": 1000})
    report = diff_traces(before, after)
    assert [d.name for d in report.regression_list()] == ["ltbo.bytes_saved"]


def test_repeated_spans_are_summed_per_name():
    before = Trace(
        spans=[Span(name="ltbo.group", start=0.0, duration=1.0),
               Span(name="ltbo.group", start=0.0, duration=1.0)],
        counters={}, gauges={}, meta={},
    )
    report = diff_traces(before, before)
    [group] = [d for d in report.phases if d.name == "ltbo.group"]
    assert group.before == pytest.approx(2.0)


# -- ledger diffing ---------------------------------------------------------


def test_identical_entries_have_no_regressions():
    entry = _entry()
    assert not diff_entries(entry, entry).has_regressions


def test_bigger_text_and_smaller_reduction_are_flagged():
    report = diff_entries(_entry(after=8000), _entry(after=9500))
    names = [d.name for d in report.regression_list()]
    assert "text_size_after" in names
    assert "reduction" in names


def test_slower_wall_time_is_flagged_with_floor():
    report = diff_entries(_entry(wall=1.0), _entry(wall=1.5))
    assert [d.name for d in report.regression_list()] == ["wall_seconds"]
    noisy = diff_entries(_entry(wall=0.010), _entry(wall=0.015))
    assert not noisy.has_regressions


def test_render_is_readable():
    report = diff_entries(_entry(after=8000, wall=1.0),
                          _entry(after=9500, wall=1.5))
    text = report.render()
    assert "compare (ledger)" in text
    assert "wall_seconds" in text and "text_size_after" in text
    assert text.count("REGRESSION") == 3


def test_report_kinds():
    assert isinstance(diff_traces(_trace({}), _trace({})), DiffReport)
    assert diff_traces(_trace({}), _trace({})).kind == "trace"
    assert diff_entries(_entry(), _entry()).kind == "ledger"


def test_graph_deltas_are_gated_when_both_sides_carry_them():
    """``calibro compare`` on two incremental entries flags a grown
    rebuild set and a slower delta; entries without graph accounting
    are untouched."""
    lean = _entry()
    lean_graph = LedgerEntry(
        config="c", engine="e", text_size_before=10000, text_size_after=8000,
        wall_seconds=1.0, graph={"nodes_rebuilt": 2, "seconds": 0.5},
    )
    fat_graph = LedgerEntry(
        config="c", engine="e", text_size_before=10000, text_size_after=8000,
        wall_seconds=1.0, graph={"nodes_rebuilt": 40, "seconds": 2.0},
    )
    report = diff_entries(lean_graph, fat_graph)
    names = [d.name for d in report.regression_list()]
    assert "graph.nodes_rebuilt" in names
    assert "graph.delta_seconds" in names
    # One side without accounting -> no graph deltas at all.
    one_sided = diff_entries(lean, fat_graph)
    assert not any(d.name.startswith("graph.") for d in one_sided.phases + one_sided.sizes)


def test_cache_hit_rate_is_gated_when_both_sides_have_traffic():
    """A warm build quietly going cold (broken shared cache, key drift,
    over-eager eviction) regresses the derived hit-rate ratio; a cold
    baseline with zero traffic gates nothing."""
    def traffic(hits, misses):
        return LedgerEntry(
            config="c", engine="e", text_size_before=10000,
            text_size_after=8000, wall_seconds=1.0,
            cache_hits=hits, cache_misses=misses,
        )

    went_cold = diff_entries(traffic(9, 1), traffic(1, 9))
    assert "service.cache.hit_rate" in [d.name for d in went_cold.regression_list()]
    # Warming up is an improvement, not a regression.
    warmed = diff_entries(traffic(1, 9), traffic(9, 1))
    assert not warmed.has_regressions
    # Jitter inside the threshold passes.
    steady = diff_entries(traffic(90, 10), traffic(89, 11))
    assert not steady.has_regressions
    # Zero traffic on either side: the ratio is not even reported.
    untraded = diff_entries(_entry(), traffic(1, 9))
    assert "service.cache.hit_rate" not in [
        d.name for d in untraded.phases + untraded.sizes
    ]
