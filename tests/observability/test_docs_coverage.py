"""docs/observability.md must document every span/counter/gauge name.

Instrumentation names are static string literals by convention (no
f-strings), exactly so this test can hold the documentation to the
code.  If it fails, either the doc is missing a name or a name was
built dynamically — both are bugs.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "observability.md"

#: obs.span(...) / tracer.span(...) / tracer.record_span(...) /
#: obs.counter_add(...) / obs.gauge_set(...) / obs.gauge_max(...) /
#: obs.histogram_observe(...), with the name literal possibly wrapped
#: onto the next line by the formatter.
_NAME_CALL = re.compile(
    r"\b(?:span|record_span|counter_add|gauge_set|gauge_max|histogram_observe)"
    r"\(\s*\"([^\"]+)\""
)


def emitted_names() -> set[str]:
    names: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        if path.is_relative_to(SRC / "observability"):
            continue  # the substrate itself only names spans in examples
        names.update(_NAME_CALL.findall(path.read_text(encoding="utf-8")))
    return names


def test_instrumentation_exists():
    names = emitted_names()
    # Canaries from each instrumented layer — if these disappear the
    # regex (or the instrumentation) broke.
    assert {"build", "dex2oat.codegen", "ltbo.group", "link.relocate",
            "emulator.cycles", "suffix_tree.nodes",
            "mine.repeat.length", "service.cache.lookup_seconds",
            "service.server.accepted", "service.server.rejected_quota",
            "service.server.queue_wait_seconds"} <= names
    assert len(names) > 40


def test_every_name_is_documented():
    doc = DOC.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([a-z0-9_.]+)`", doc))
    missing = sorted(emitted_names() - documented)
    assert not missing, (
        f"span/counter names emitted in src/ but absent from "
        f"docs/observability.md: {missing}"
    )


def test_trace_schema_fields_are_documented():
    """v3 span identity (span_id/parent_id/pid), the trace meta keys
    and the subprocess propagation variable are documented surface."""
    doc = DOC.read_text(encoding="utf-8")
    for name in ("span_id", "parent_id", "pid", "trace_id", "epoch_unix"):
        assert f"`{name}`" in doc, f"docs/observability.md missing `{name}`"
    assert "CALIBRO_TRACE_CONTEXT" in doc


def test_every_ledger_field_is_documented():
    """The ledger record schema is part of the documented surface."""
    from repro.observability import LedgerEntry

    entry = LedgerEntry(config="c", engine="e", meta={"k": 1})
    doc = DOC.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([a-z0-9_.]+)`", doc))
    missing = sorted(set(entry.to_dict()) - documented)
    assert not missing, (
        f"ledger fields emitted by LedgerEntry.to_dict but absent from "
        f"docs/observability.md: {missing}"
    )
