"""docs/observability.md must document every span/counter/gauge name.

Instrumentation names are static string literals by convention (no
f-strings), exactly so this test can hold the documentation to the
code.  If it fails, either the doc is missing a name or a name was
built dynamically — both are bugs.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "observability.md"

#: obs.span(...) / tracer.span(...) / tracer.record_span(...) /
#: obs.counter_add(...) / obs.gauge_set(...) / obs.gauge_max(...), with
#: the name literal possibly wrapped onto the next line by the formatter.
_NAME_CALL = re.compile(
    r"\b(?:span|record_span|counter_add|gauge_set|gauge_max)\(\s*\"([^\"]+)\""
)


def emitted_names() -> set[str]:
    names: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        if path.is_relative_to(SRC / "observability"):
            continue  # the substrate itself only names spans in examples
        names.update(_NAME_CALL.findall(path.read_text(encoding="utf-8")))
    return names


def test_instrumentation_exists():
    names = emitted_names()
    # Canaries from each instrumented layer — if these disappear the
    # regex (or the instrumentation) broke.
    assert {"build", "dex2oat.codegen", "ltbo.group", "link.relocate",
            "emulator.cycles", "suffix_tree.nodes"} <= names
    assert len(names) > 40


def test_every_name_is_documented():
    doc = DOC.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([a-z0-9_.]+)`", doc))
    missing = sorted(emitted_names() - documented)
    assert not missing, (
        f"span/counter names emitted in src/ but absent from "
        f"docs/observability.md: {missing}"
    )
