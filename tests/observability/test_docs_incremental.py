"""docs/incremental.md must document the whole rebuild-model surface.

Same contract style as ``test_docs_coverage``: instrumentation names
are static literals, so the doc can be held to the code.  The
incremental doc owns three surfaces — every ``service.graph.*``
span/counter/histogram name, every key of the ``GraphDelta``
accounting dict (the ledger's ``graph`` field and the report's
``graph`` summary block), and the on-disk graph-state schema version.
"""

from __future__ import annotations

import re
from pathlib import Path

from tests.observability.test_docs_coverage import emitted_names

REPO = Path(__file__).resolve().parents[2]
DOC = REPO / "docs" / "incremental.md"


def _documented() -> set[str]:
    return set(re.findall(r"`([a-zA-Z0-9_.]+)`", DOC.read_text(encoding="utf-8")))


def test_graph_metrics_exist():
    graph_names = {n for n in emitted_names() if n.startswith("service.graph.")}
    # Canaries: the rebuild accounting the CI gate rides on.
    assert {"service.graph.build", "service.graph.nodes_reused",
            "service.graph.state_corrupt",
            "service.graph.delta_seconds"} <= graph_names
    assert len(graph_names) >= 10


def test_every_graph_metric_is_documented():
    graph_names = {n for n in emitted_names() if n.startswith("service.graph.")}
    missing = sorted(graph_names - _documented())
    assert not missing, (
        f"service.graph.* names emitted in src/ but absent from "
        f"docs/incremental.md: {missing}"
    )


def test_every_delta_field_is_documented():
    """``GraphDelta.as_dict()`` is the ledger/report schema for delta
    accounting — every key must appear in the doc."""
    from repro.service import GraphDelta

    missing = sorted(set(GraphDelta().as_dict()) - _documented())
    assert not missing, (
        f"GraphDelta fields absent from docs/incremental.md: {missing}"
    )


def test_schema_version_is_documented():
    from repro.service import GRAPH_SCHEMA_VERSION

    text = DOC.read_text(encoding="utf-8")
    assert re.search(rf"schema[_ ]version.*\b{GRAPH_SCHEMA_VERSION}\b",
                     text, re.IGNORECASE | re.DOTALL), (
        "docs/incremental.md must state the current graph-state "
        f"schema version ({GRAPH_SCHEMA_VERSION})"
    )
