"""docs/service.md must document the serving protocol and ServiceConfig.

The wire protocol module and the config dataclass are the sources of
truth: every op, event, refusal reason and config field must appear
(backticked) in docs/service.md, and the documented protocol version
must match the code.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

from repro.service.config import ServiceConfig
from repro.service.protocol import EVENTS, OPS, PROTOCOL_VERSION

DOC = Path(__file__).resolve().parents[2] / "docs" / "service.md"

#: The machine-readable refusal/error vocabulary the server emits
#: (server.py sends these as ``reason``/``code`` values).
REASONS = ("queue-full", "tenant-quota")
ERROR_CODES = ("protocol", "bad-request", "build-error", "unknown-build")


def _doc_text() -> str:
    return DOC.read_text(encoding="utf-8")


def _backticked(text: str) -> set[str]:
    # Token-shaped spans only: the naive ``[^`]+`` pairing desyncs on
    # ``` code fences and swallows whole blocks.
    return set(re.findall(r"`([a-z0-9_.\-]+)`", text))


def test_protocol_section_exists():
    assert "## The serving protocol" in _doc_text()


def test_every_op_is_documented():
    documented = _backticked(_doc_text())
    missing = sorted(set(OPS) - documented)
    assert not missing, f"protocol ops absent from docs/service.md: {missing}"


def test_every_event_is_documented():
    documented = _backticked(_doc_text())
    missing = sorted(set(EVENTS) - documented)
    assert not missing, f"protocol events absent from docs/service.md: {missing}"


def test_refusal_vocabulary_is_documented():
    documented = _backticked(_doc_text())
    missing = sorted((set(REASONS) | set(ERROR_CODES)) - documented)
    assert not missing, f"reasons/codes absent from docs/service.md: {missing}"


def test_documented_protocol_version_matches_code():
    assert f"currently {PROTOCOL_VERSION})" in _doc_text()


def test_every_service_config_field_is_documented():
    documented = _backticked(_doc_text())
    fields = {f.name for f in dataclasses.fields(ServiceConfig)}
    missing = sorted(fields - documented)
    assert not missing, (
        f"ServiceConfig fields absent from docs/service.md: {missing}"
    )
