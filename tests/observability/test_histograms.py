"""Histograms and trace schema versioning."""

from __future__ import annotations

import json

import pytest

from repro import observability as obs
from repro.core.errors import CalibroError
from repro.observability import (
    HISTOGRAM_BOUNDS,
    Histogram,
    TRACE_SCHEMA_VERSION,
    Trace,
    Tracer,
    render_text,
)


# -- the Histogram primitive ------------------------------------------------


def test_bounds_are_log_scaled_and_cover_the_useful_range():
    assert len(HISTOGRAM_BOUNDS) == 30
    assert HISTOGRAM_BOUNDS[0] == pytest.approx(1e-6)
    assert HISTOGRAM_BOUNDS[-1] > 500  # ~537 s
    for a, b in zip(HISTOGRAM_BOUNDS, HISTOGRAM_BOUNDS[1:]):
        assert b == pytest.approx(2 * a)


def test_observe_tracks_exact_extremes_and_sum():
    hist = Histogram()
    for value in (0.001, 0.003, 0.5, 12.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(12.504)
    assert hist.min == 0.001
    assert hist.max == 12.0
    assert hist.mean == pytest.approx(12.504 / 4)


def test_empty_histogram_quantiles_are_zero_and_serializes_null_extremes():
    hist = Histogram()
    assert hist.count == 0
    assert hist.p50 == 0.0 and hist.p99 == 0.0 and hist.mean == 0.0
    data = hist.to_dict()
    assert data["min"] is None and data["max"] is None
    assert Histogram.from_dict(data) == hist


def test_quantiles_are_bucket_bounds_clamped_to_observed_range():
    hist = Histogram()
    hist.observe(5.0)
    # A single observation: every quantile is that exact value.
    assert hist.p50 == 5.0 and hist.p90 == 5.0 and hist.p99 == 5.0

    hist = Histogram()
    for _ in range(99):
        hist.observe(0.001)
    hist.observe(10.0)
    # p50..p99 (ranks 50-99) sit in the 0.001 bucket; the top rank is
    # the outlier, clamped to the exact max.
    assert hist.p50 <= hist.p90 <= hist.p99 <= hist.max
    assert hist.p99 < 0.002
    assert hist.quantile(1.0) == 10.0


def test_overflow_values_land_in_the_inf_slot():
    hist = Histogram()
    hist.observe(1e9)  # beyond the largest bound
    assert hist.count == 1
    assert hist.max == 1e9
    assert hist.counts[len(HISTOGRAM_BOUNDS)] == 1
    assert hist.p99 == 1e9  # clamped to max


def test_non_positive_values_land_in_the_first_bucket():
    hist = Histogram()
    hist.observe(0.0)
    hist.observe(-1.0)
    assert hist.count == 2
    assert hist.counts[0] == 2
    assert hist.min == -1.0


# -- serialization ----------------------------------------------------------


def test_round_trip_preserves_quantiles_exactly():
    """The acceptance property: quantiles are derived from integer
    bucket counts plus exact min/max floats, so a JSON round trip
    reproduces them bit-for-bit — no approx."""
    hist = Histogram()
    for i in range(1, 500):
        hist.observe(i * 0.00137)
    back = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
    assert back == hist
    assert back.p50 == hist.p50
    assert back.p90 == hist.p90
    assert back.p99 == hist.p99
    assert back.min == hist.min and back.max == hist.max
    assert back.sum == hist.sum and back.count == hist.count


def test_to_dict_trims_trailing_empty_buckets():
    hist = Histogram()
    hist.observe(1e-6)  # first bucket only
    data = hist.to_dict()
    assert len(data["counts"]) <= 2
    assert Histogram.from_dict(data) == hist


# -- tracer + trace integration ---------------------------------------------


def test_tracer_histogram_observe_and_snapshot_isolation():
    tracer = Tracer()
    tracer.histogram_observe("x.seconds", 0.25)
    snap = tracer.snapshot()
    tracer.histogram_observe("x.seconds", 0.5)
    assert snap.histograms["x.seconds"].count == 1  # deep copy
    assert tracer.histograms["x.seconds"].count == 2


def test_module_helper_is_a_noop_without_a_tracer():
    assert obs.current_tracer() is None
    obs.histogram_observe("never.recorded", 1.0)  # must not raise
    with obs.tracing() as tracer:
        obs.histogram_observe("now.recorded", 1.0)
    assert tracer.histograms["now.recorded"].count == 1


def test_trace_json_round_trip_carries_histograms():
    with obs.tracing() as tracer:
        with obs.span("work"):
            obs.histogram_observe("work.seconds", 0.125)
            obs.histogram_observe("work.seconds", 0.25)
    trace = tracer.snapshot()
    doc = json.loads(json.dumps(trace.to_dict()))
    assert doc["version"] == TRACE_SCHEMA_VERSION
    back = Trace.from_dict(doc)
    assert back.histograms["work.seconds"] == trace.histograms["work.seconds"]


def test_render_text_includes_histogram_section():
    with obs.tracing() as tracer:
        with obs.span("work"):
            obs.histogram_observe("work.seconds", 0.125)
    text = render_text(tracer.snapshot())
    assert "histograms:" in text
    assert "work.seconds" in text
    assert "p99=" in text


# -- version tolerance ------------------------------------------------------


def test_v1_trace_without_version_still_loads():
    """Documents written before the version key existed load as v1."""
    legacy = {
        "spans": [{"name": "build", "start": 0.0, "duration": 1.0,
                   "attrs": {}, "children": []}],
        "counters": {"n": 1},
        "gauges": {},
        "meta": {},
    }
    trace = Trace.from_dict(legacy)
    assert trace.spans[0].name == "build"
    assert trace.histograms == {}


def test_newer_trace_version_raises_a_clear_error():
    doc = {"version": TRACE_SCHEMA_VERSION + 1, "spans": [],
           "counters": {}, "gauges": {}, "meta": {}}
    with pytest.raises(CalibroError, match="newer than this build"):
        Trace.from_dict(doc)


def test_invalid_trace_version_raises():
    with pytest.raises(CalibroError):
        Trace.from_dict({"version": "two", "spans": []})
