"""The append-only JSONL build ledger."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import CalibroError
from repro.observability import (
    LEDGER_SCHEMA_VERSION,
    BuildLedger,
    LedgerEntry,
    trace_digest,
)


def _entry(config="CTO+LTBO", label="app", before=10000, after=8000, **kw):
    return LedgerEntry(
        config=config,
        engine="suffixtree",
        label=label,
        text_size_before=before,
        text_size_after=after,
        wall_seconds=kw.pop("wall_seconds", 1.5),
        timestamp=kw.pop("timestamp", 1000.0),
        **kw,
    )


# -- LedgerEntry ------------------------------------------------------------


def test_reduction_matches_the_paper_formula():
    assert _entry(before=10000, after=8081).reduction == pytest.approx(0.1919)
    assert _entry(before=0, after=0).reduction == 0.0  # no division by zero


def test_entry_round_trip():
    entry = _entry(cache_hits=3, cache_misses=1, meta={"git": "abc123"})
    back = LedgerEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
    assert back == entry


def test_dict_carries_derived_reduction_and_schema_version():
    data = _entry(before=10000, after=8000).to_dict()
    assert data["schema_version"] == LEDGER_SCHEMA_VERSION
    assert data["reduction"] == pytest.approx(0.2)


def test_missing_schema_version_reads_as_v1():
    data = _entry().to_dict()
    del data["schema_version"]
    assert LedgerEntry.from_dict(data).schema_version == 1


def test_newer_schema_version_is_refused():
    data = _entry().to_dict()
    data["schema_version"] = LEDGER_SCHEMA_VERSION + 1
    with pytest.raises(CalibroError, match="newer than this build"):
        LedgerEntry.from_dict(data)


def test_non_mapping_record_is_refused():
    with pytest.raises(CalibroError, match="mapping"):
        LedgerEntry.from_dict(["not", "a", "dict"])


# -- BuildLedger ------------------------------------------------------------


def test_append_and_iterate(tmp_path):
    ledger = BuildLedger(tmp_path / "sub" / "ledger.jsonl")  # parents created
    ledger.append(_entry(label="a"))
    ledger.append(_entry(label="b"))
    labels = [e.label for e in ledger.entries()]
    assert labels == ["a", "b"]


def test_missing_file_reads_as_empty(tmp_path):
    assert BuildLedger(tmp_path / "absent.jsonl").entries() == []


def test_truncated_final_line_is_tolerated(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = BuildLedger(path)
    ledger.append(_entry(label="ok"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"config": "crashed mid-wri')  # a dead writer's last gasp
    assert [e.label for e in ledger.entries()] == ["ok"]


def test_corrupt_interior_line_raises_with_line_number(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = BuildLedger(path)
    ledger.append(_entry(label="a"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("garbage\n")
    ledger.append(_entry(label="b"))
    with pytest.raises(CalibroError, match=":2"):
        ledger.entries()


def test_last_filters_by_config_and_label(tmp_path):
    ledger = BuildLedger(tmp_path / "ledger.jsonl")
    ledger.append(_entry(config="A", label="x", after=1))
    ledger.append(_entry(config="B", label="x", after=2))
    ledger.append(_entry(config="A", label="y", after=3))
    assert ledger.last().text_size_after == 3
    assert ledger.last(config="B").text_size_after == 2
    assert ledger.last(config="A", label="x").text_size_after == 1
    assert ledger.last(config="missing") is None
    assert ledger.configs() == ["A", "B"]


# -- durability: torn writes and injected faults ----------------------------


def test_trailing_corrupt_lines_are_counted_and_metered(tmp_path):
    from repro import observability as obs

    path = tmp_path / "ledger.jsonl"
    ledger = BuildLedger(path)
    ledger.append(_entry(label="ok"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"config": "torn mid-wri\n')  # ENOSPC / crash leftovers
        fh.write("{{{not json\n")
    with obs.tracing() as tracer:
        assert [e.label for e in ledger.entries()] == ["ok"]
    assert ledger.corrupt_lines == 2
    assert tracer.counters["ledger.corrupt_lines"] == 2
    # A later clean append supersedes the damage assessment.
    ledger.append(_entry(label="next"))
    with pytest.raises(CalibroError):  # torn lines are now interior
        ledger.entries()


def test_append_fault_site_fires_in_parent(tmp_path):
    from repro.core.errors import ServiceError
    from repro.service.faults import FaultPlan, armed

    ledger = BuildLedger(tmp_path / "ledger.jsonl")
    plan = FaultPlan(seed=0, error=1.0, in_parent=True, match=("ledger:app",))
    with armed(plan):
        with pytest.raises(ServiceError, match="injected fault at ledger:app"):
            ledger.append(_entry(label="app"))
        # Non-matching key passes through untouched.
        ledger.append(_entry(label="other"))
    # The fault fired before any bytes landed: no torn half-record.
    assert [e.label for e in ledger.entries()] == ["other"]
    assert ledger.corrupt_lines == 0


def test_ledger_fault_site_stays_quiet_outside_child_without_in_parent(tmp_path):
    from repro.service.faults import FaultPlan, armed

    ledger = BuildLedger(tmp_path / "ledger.jsonl")
    plan = FaultPlan(seed=0, error=1.0, match=("ledger:app",))  # child-only
    with armed(plan):
        ledger.append(_entry(label="app"))
    assert [e.label for e in ledger.entries()] == ["app"]


# -- distilling builds ------------------------------------------------------


def test_trace_digest_is_canonical_and_none_safe():
    assert trace_digest(None) == ""
    from repro.observability import Trace

    trace = Trace(spans=[], counters={"a": 1}, gauges={}, meta={})
    digest = trace_digest(trace)
    assert len(digest) == 64
    assert digest == trace_digest(Trace(spans=[], counters={"a": 1},
                                        gauges={}, meta={}))


def test_entry_from_build_distills_a_real_build(small_app):
    from repro.core import CalibroConfig, build_app
    from repro.observability import entry_from_build

    build = build_app(small_app.dexfile, CalibroConfig.cto_ltbo())
    entry = entry_from_build(build, label="taobao", timestamp=123.0)
    assert entry.config == build.config.name
    assert entry.engine == build.config.engine
    assert entry.label == "taobao"
    assert entry.text_size_after == build.text_size
    bytes_saved = sum(s.bytes_saved for s in build.outline_stats)
    assert entry.text_size_before == build.text_size + bytes_saved
    assert entry.reduction > 0
    assert entry.wall_seconds == build.build_seconds
    assert entry.timestamp == 123.0


def test_trace_id_round_trips_through_the_ledger(tmp_path):
    """v4: the distributed-trace id joins a ledger row to its trace."""
    ledger = BuildLedger(tmp_path / "ledger.jsonl")
    ledger.append(_entry(label="traced", trace_id="ab" * 16))
    ledger.append(_entry(label="dark"))  # built without a tracer
    traced, dark = ledger.entries()
    assert traced.trace_id == "ab" * 16
    assert dark.trace_id == ""
    assert _entry(trace_id="cd" * 16).to_dict()["trace_id"] == "cd" * 16


def test_entry_from_build_records_the_trace_id(small_app):
    from repro import observability as obs
    from repro.core import CalibroConfig, build_app
    from repro.observability import entry_from_build

    with obs.tracing() as tracer:
        build = build_app(small_app.dexfile, CalibroConfig.cto())
    entry = entry_from_build(build, label="taobao")
    assert entry.trace_id == tracer.trace_id


def test_graph_field_round_trips_and_stays_optional():
    """v2: incremental builds attach the delta accounting dict; plain
    builds serialize without the key at all (old readers unaffected)."""
    plain = _entry()
    assert "graph" not in plain.to_dict()
    delta = {"full_rebuild": False, "nodes_total": 9, "nodes_reused": 8,
             "nodes_rebuilt": 1, "seconds": 0.04}
    entry = _entry(graph=delta)
    data = json.loads(json.dumps(entry.to_dict()))
    assert data["graph"] == delta
    assert LedgerEntry.from_dict(data) == entry
