"""The Prometheus text exposition renderer and file reporter."""

from __future__ import annotations

import re

import pytest

from repro import observability as obs
from repro.observability import (
    HISTOGRAM_BOUNDS,
    Histogram,
    PromReporter,
    Trace,
    prom_name,
    render_prometheus,
)

#: One sample line of the 0.0.4 text format:
#: ``name{label="value",...} number``.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[0-9.eE+-]+|NaN|\+Inf|-Inf)$"
)
_TYPE = re.compile(r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
                   r"(?P<kind>counter|gauge|histogram)$")


def _parse(text: str):
    """Parse an exposition document into ``{metric: kind}`` and
    ``[(name, labels, value)]`` samples, validating every line."""
    types: dict[str, str] = {}
    samples: list[tuple[str, str, float]] = []
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("#"):
            match = _TYPE.match(line)
            assert match, f"malformed TYPE line: {line!r}"
            types[match["name"]] = match["kind"]
            continue
        match = _SAMPLE.match(line)
        assert match, f"malformed sample line: {line!r}"
        samples.append(
            (match["name"], match["labels"] or "", float(match["value"]
             .replace("+Inf", "inf").replace("-Inf", "-inf")))
        )
    return types, samples


def _trace(**kw) -> Trace:
    return Trace(spans=[], counters=kw.pop("counters", {}),
                 gauges=kw.pop("gauges", {}), meta={}, **kw)


def test_prom_name_sanitizes_and_prefixes():
    assert prom_name("service.cache.hits") == "calibro_service_cache_hits"
    assert prom_name("ltbo.group.seconds") == "calibro_ltbo_group_seconds"
    assert prom_name("weird-name!") == "calibro_weird_name_"


def test_counters_and_gauges_render_with_types():
    text = render_prometheus(_trace(counters={"a.count": 3},
                                    gauges={"b.level": 1.5}))
    types, samples = _parse(text)
    assert types == {"calibro_a_count": "counter", "calibro_b_level": "gauge"}
    assert ("calibro_a_count", "", 3.0) in samples
    assert ("calibro_b_level", "", 1.5) in samples


def test_histogram_renders_the_cumulative_triplet():
    hist = Histogram()
    for value in (0.001, 0.002, 0.5):
        hist.observe(value)
    trace = _trace()
    trace.histograms["x.seconds"] = hist
    types, samples = _parse(render_prometheus(trace))
    assert types["calibro_x_seconds"] == "histogram"

    buckets = [s for s in samples if s[0] == "calibro_x_seconds_bucket"]
    assert len(buckets) == len(HISTOGRAM_BOUNDS) + 1  # + le="+Inf"
    values = [v for _, _, v in buckets]
    assert values == sorted(values)  # cumulative => monotone
    assert buckets[-1][1] == 'le="+Inf"'
    assert buckets[-1][2] == 3.0

    [(_, _, total)] = [s for s in samples if s[0] == "calibro_x_seconds_count"]
    assert total == 3.0
    [(_, _, sum_)] = [s for s in samples if s[0] == "calibro_x_seconds_sum"]
    assert sum_ == pytest.approx(0.503)


def test_reporter_writes_atomically(tmp_path):
    path = tmp_path / "metrics.prom"
    reporter = PromReporter(str(path))
    reporter.emit(_trace(counters={"n": 1}))
    first = path.read_text(encoding="utf-8")
    assert "calibro_n 1" in first
    reporter.emit(_trace(counters={"n": 2}))
    assert "calibro_n 2" in path.read_text(encoding="utf-8")
    assert not path.with_suffix(".prom.tmp").exists()


def test_live_tracer_snapshot_is_valid_exposition():
    """The ``serve --metrics-file`` shape: a real tracer's snapshot must
    always parse."""
    with obs.tracing() as tracer:
        with obs.span("build"):
            obs.counter_add("things", 7)
            obs.gauge_set("level", 2)
            obs.histogram_observe("lat.seconds", 0.01)
    types, samples = _parse(render_prometheus(tracer.snapshot()))
    assert types["calibro_things"] == "counter"
    assert types["calibro_lat_seconds"] == "histogram"
    assert any(name == "calibro_level" for name, _, _ in samples)
