"""Reporters: JSON persistence and the text phase tree, including the
round trip through the ``calibro trace`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.observability import (
    JsonReporter,
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    TextReporter,
    load_trace,
    render_text,
    write_json,
)


@pytest.fixture
def trace() -> Trace:
    return Trace(
        spans=[
            Span(
                name="build",
                start=0.0,
                duration=2.0,
                attrs={"config": "cto_ltbo"},
                children=[
                    Span(name="build.dex2oat", start=0.0, duration=1.2),
                    Span(name="build.ltbo", start=1.2, duration=0.6),
                ],
            )
        ],
        counters={"ltbo.repeats_outlined": 36, "ltbo.bytes_saved": 12345},
        gauges={"plopti.peak_partition_size": 14.0},
        meta={"command": "build"},
    )


def test_json_round_trip(tmp_path, trace):
    path = tmp_path / "t.json"
    write_json(trace, str(path))
    back = load_trace(str(path))
    assert back.to_dict() == trace.to_dict()
    assert back.find("build.ltbo").duration == pytest.approx(0.6)
    assert back.meta == {"command": "build"}


def test_json_reporter_emits_versioned_document(tmp_path, trace):
    path = tmp_path / "t.json"
    JsonReporter(str(path)).emit(trace)
    data = json.loads(path.read_text())
    assert data["version"] == TRACE_SCHEMA_VERSION
    assert data["counters"]["ltbo.bytes_saved"] == 12345


def test_render_text_tree_shape(trace):
    text = render_text(trace)
    lines = text.splitlines()
    assert lines[0].startswith("build [config=cto_ltbo]")
    assert "100.0%" in lines[0]
    assert lines[1].lstrip().startswith("├─ build.dex2oat")
    assert lines[2].lstrip().startswith("└─ build.ltbo")
    assert "60.0%" in lines[1]  # 1.2s of 2.0s
    assert "counters:" in text and "gauges:" in text
    assert "ltbo.bytes_saved" in text and "12,345" in text


def test_render_text_without_counters(trace):
    text = render_text(trace, counters=False)
    assert "counters:" not in text
    assert "ltbo.bytes_saved" not in text


def test_render_text_empty_trace():
    assert "(no spans recorded)" in render_text(Trace())


def test_text_reporter_writes_to_stream(trace, capsys):
    TextReporter().emit(trace)
    assert "build.dex2oat" in capsys.readouterr().out


def test_cli_trace_round_trip(tmp_path, trace, capsys):
    """``calibro trace`` on a saved JSON prints exactly the rendered tree."""
    path = tmp_path / "t.json"
    write_json(trace, str(path))
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert out.rstrip("\n") == render_text(load_trace(str(path)))
    assert "build.ltbo" in out and "plopti.peak_partition_size" in out

    assert main(["trace", str(path), "--no-counters"]) == 0
    out = capsys.readouterr().out
    assert "counters:" not in out
