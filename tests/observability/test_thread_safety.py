"""Concurrent registry updates must lose nothing.

The service layer runs cache lookups and pool bookkeeping from whatever
thread happens to drive a build, so ``Tracer``'s counter/gauge/histogram
registries take a lock.  Spans stay single-threaded by contract (the
current-span stack is deliberately unguarded); these tests hammer only
the registries.
"""

from __future__ import annotations

import threading

from repro import observability as obs
from repro.observability import Tracer

THREADS = 8
ITERATIONS = 2500


def _hammer(tracer: Tracer, barrier: threading.Barrier) -> None:
    barrier.wait()
    for i in range(ITERATIONS):
        tracer.add("shared.counter", 1)
        tracer.gauge_max("shared.peak", i)
        tracer.gauge_set("shared.level", i)
        tracer.histogram_observe("shared.hist", 0.001 * (i % 7 + 1))


def test_concurrent_updates_lose_no_increments():
    tracer = Tracer()
    barrier = threading.Barrier(THREADS)
    threads = [
        threading.Thread(target=_hammer, args=(tracer, barrier))
        for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert tracer.counters["shared.counter"] == THREADS * ITERATIONS
    assert tracer.gauges["shared.peak"] == ITERATIONS - 1
    hist = tracer.histograms["shared.hist"]
    assert hist.count == THREADS * ITERATIONS
    assert sum(hist.counts) == THREADS * ITERATIONS
    assert hist.min == 0.001 and hist.max == 0.007


def test_concurrent_module_helpers_through_an_installed_tracer():
    with obs.tracing() as tracer:
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait()
            for _ in range(1000):
                obs.counter_add("helper.counter")
                obs.histogram_observe("helper.hist", 0.5)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert tracer.counters["helper.counter"] == 4000
    assert tracer.histograms["helper.hist"].count == 4000


def test_snapshot_during_concurrent_writes_is_internally_consistent():
    """A snapshot taken mid-hammer must satisfy the histogram's own
    invariant (bucket counts sum to the total) even while writers race."""
    tracer = Tracer()
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            tracer.histogram_observe("racing.hist", 0.01)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(50):
            snap = tracer.snapshot()
            hist = snap.histograms.get("racing.hist")
            if hist is not None:
                assert sum(hist.counts) == hist.count
    finally:
        stop.set()
        for thread in threads:
            thread.join()
