"""The tracing substrate: spans, counters, gauges, installation."""

from __future__ import annotations

import pytest

from repro import observability as obs
from repro.observability import Span, Trace, Tracer


class FakeClock:
    """Deterministic monotonic clock for exact duration assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def tracer(clock) -> Tracer:
    return Tracer(clock=clock)


# -- span nesting -----------------------------------------------------------


def test_span_nesting(tracer, clock):
    with tracer.span("outer"):
        clock.advance(1.0)
        with tracer.span("inner"):
            clock.advance(2.0)
        clock.advance(0.5)

    (outer,) = tracer.roots
    assert outer.name == "outer"
    assert outer.duration == pytest.approx(3.5)
    (inner,) = outer.children
    assert inner.name == "inner"
    assert inner.start == pytest.approx(1.0)
    assert inner.duration == pytest.approx(2.0)
    assert outer.child_seconds == pytest.approx(2.0)
    assert outer.self_seconds == pytest.approx(1.5)


def test_sibling_spans_share_parent(tracer):
    with tracer.span("parent"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    (parent,) = tracer.roots
    assert [c.name for c in parent.children] == ["a", "b"]


def test_span_attrs_recorded(tracer):
    with tracer.span("build", config="cto_ltbo", groups=4) as node:
        pass
    assert node.attrs == {"config": "cto_ltbo", "groups": 4}


def test_exception_closes_span_and_propagates(tracer, clock):
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("outer"):
            clock.advance(1.0)
            raise ValueError("boom")
    (outer,) = tracer.roots
    assert outer.duration == pytest.approx(1.0)
    assert tracer.current_span is None


def test_missed_inner_close_does_not_corrupt_outer(tracer, clock):
    # Close the outer span while an inner one is still on the stack; the
    # stack unwinds past the orphan instead of misattributing durations.
    outer_ctx = tracer.span("outer")
    outer = outer_ctx.__enter__()
    clock.advance(1.0)
    tracer.span("orphan").__enter__()
    clock.advance(2.0)
    outer_ctx.__exit__(None, None, None)
    assert tracer.current_span is None
    assert outer.duration == pytest.approx(3.0)
    assert outer.children[0].duration == pytest.approx(2.0)


def test_record_span_parenting(tracer, clock):
    with tracer.span("outer") as outer:
        group = tracer.record_span("group", 1.5, parent=outer, start=0.0, group=0)
        tracer.record_span("group.inner", 1.0, parent=group, start=0.0)
        implicit = tracer.record_span("implicit", 0.25)
    root_level = tracer.record_span("detached", 0.5)

    assert group in outer.children and implicit in outer.children
    assert group.duration == pytest.approx(1.5)
    assert group.attrs == {"group": 0}
    assert group.children[0].name == "group.inner"
    assert root_level in tracer.roots


# -- counters / gauges ------------------------------------------------------


def test_counter_arithmetic(tracer):
    tracer.add("n")
    tracer.add("n")
    tracer.add("n", 40)
    tracer.add("delta", -14)
    assert tracer.counters == {"n": 42, "delta": -14}


def test_gauges(tracer):
    tracer.gauge_set("g", 3.0)
    tracer.gauge_set("g", 1.0)
    assert tracer.gauges["g"] == 1.0
    tracer.gauge_max("m", 5.0)
    tracer.gauge_max("m", 2.0)
    tracer.gauge_max("m", 9.0)
    assert tracer.gauges["m"] == 9.0


# -- module-level helpers and installation ----------------------------------


def test_helpers_are_noops_without_tracer():
    assert obs.current_tracer() is None
    with obs.span("nothing", attr=1) as node:
        assert node is None
    obs.counter_add("nothing")
    obs.gauge_set("nothing", 1.0)
    obs.gauge_max("nothing", 1.0)
    assert obs.current_tracer() is None


def test_tracing_installs_and_restores():
    assert obs.current_tracer() is None
    with obs.tracing() as tracer:
        assert obs.current_tracer() is tracer
        with obs.span("via.module"):
            obs.counter_add("via.module", 3)
    assert obs.current_tracer() is None
    assert tracer.roots[0].name == "via.module"
    assert tracer.counters == {"via.module": 3}


def test_nested_tracing_restores_previous():
    with obs.tracing() as outer:
        with obs.tracing() as inner:
            assert obs.current_tracer() is inner
        assert obs.current_tracer() is outer


def test_set_disabled_blocks_installation():
    obs.set_disabled(True)
    try:
        assert not obs.enabled()
        assert obs.install_tracer(Tracer()) is None
        assert obs.current_tracer() is None
        with obs.tracing() as tracer:
            # The context still yields a tracer object, but nothing is
            # installed process-wide.
            assert obs.current_tracer() is None
            obs.counter_add("ignored")
        assert tracer.counters == {}
    finally:
        obs.set_disabled(False)
    assert obs.enabled()


# -- snapshot and serialisation ---------------------------------------------


def test_snapshot_closes_open_spans_with_partial_durations(tracer, clock):
    handle = tracer.span("open")
    handle.__enter__()
    clock.advance(2.0)
    trace = tracer.snapshot(config="test")
    assert trace.find("open").duration == pytest.approx(2.0)
    assert trace.meta["config"] == "test"
    # The snapshot is a copy: the live span stays open (duration 0)
    # so _end can close it with the real duration later.
    assert tracer.roots[0].duration == 0.0
    clock.advance(1.0)
    handle.__exit__(None, None, None)
    assert tracer.roots[0].duration == pytest.approx(3.0)


def test_trace_find_and_total(tracer, clock):
    with tracer.span("a"):
        clock.advance(1.0)
        with tracer.span("a.x"):
            clock.advance(1.0)
    with tracer.span("b"):
        clock.advance(3.0)
    trace = tracer.snapshot()
    assert trace.total_seconds == pytest.approx(5.0)
    assert trace.find("a.x").duration == pytest.approx(1.0)
    assert trace.find("missing") is None


def test_trace_dict_round_trip(tracer, clock):
    with tracer.span("root", kind="test"):
        clock.advance(1.25)
        with tracer.span("child"):
            clock.advance(0.5)
    tracer.add("c", 7)
    tracer.gauge_max("g", 11.0)
    trace = tracer.snapshot(note="round-trip")

    back = Trace.from_dict(trace.to_dict())
    assert back.counters == {"c": 7}
    assert back.gauges == {"g": 11.0}
    assert back.meta["note"] == "round-trip"
    # Snapshots always stamp the distributed-trace identity (v3).
    assert back.meta["trace_id"] == tracer.trace_id
    assert back.meta["pid"]
    root = back.find("root")
    assert root.attrs == {"kind": "test"}
    assert root.duration == pytest.approx(1.75)
    assert root.span_id and back.find("child").parent_id == root.span_id
    assert back.find("child").start == pytest.approx(1.25)


def test_span_from_dict_defaults():
    span = Span.from_dict({"name": "bare"})
    assert (span.start, span.duration, span.attrs, span.children) == (0.0, 0.0, {}, [])
