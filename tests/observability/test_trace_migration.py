"""Trace schema v3 migration: old documents load, newer ones are
refused, and the span-id invariants hold under real concurrency."""

from __future__ import annotations

import threading

import pytest

from repro import observability as obs
from repro.core.errors import CalibroError
from repro.core.pipeline import CalibroConfig
from repro.observability import TRACE_SCHEMA_VERSION, Trace, Tracer
from repro.service import BuildService, ServiceConfig
from repro.workloads import app_spec, generate_app

HEX = set("0123456789abcdef")


def _check_identity(trace: Trace) -> None:
    """The v3 invariants: every span id is 16 hex chars and unique
    across the trace; every parent link resolves; structural nesting
    and id links agree."""
    ids: list[str] = []
    for span in trace.walk():
        assert len(span.span_id) == 16 and set(span.span_id) <= HEX, span
        ids.append(span.span_id)
        for child in span.children:
            assert child.parent_id == span.span_id, (span.name, child.name)
    assert len(ids) == len(set(ids)), "duplicate span ids"
    known = set(ids)
    dangling = [
        s.name for s in trace.walk() if s.parent_id and s.parent_id not in known
    ]
    assert not dangling, dangling


# -- loading old documents ----------------------------------------------------


def test_v2_document_loads_under_v3():
    doc = {
        "version": 2,
        "spans": [
            {
                "name": "build",
                "start": 0.0,
                "duration": 2.0,
                "children": [{"name": "dex2oat", "start": 0.1, "duration": 1.0}],
            }
        ],
        "counters": {"cto.merged_methods": 3},
        "histograms": {},
        "meta": {"config": "CTO"},
    }
    trace = Trace.from_dict(doc)
    root = trace.spans[0]
    # v2 predates span identity: ids default empty, pid unknown.
    assert root.span_id == "" and root.parent_id == "" and root.pid == 0
    assert root.children[0].name == "dex2oat"
    assert trace.counters["cto.merged_methods"] == 3


def test_v1_document_without_version_field_loads():
    trace = Trace.from_dict({"spans": [{"name": "build"}], "meta": {}})
    assert trace.spans[0].name == "build"


def test_newer_schema_is_refused():
    with pytest.raises(CalibroError, match="newer than this build understands"):
        Trace.from_dict({"version": TRACE_SCHEMA_VERSION + 1, "spans": []})


@pytest.mark.parametrize("version", ["3", 0, -1, None])
def test_invalid_version_field_is_refused(version):
    with pytest.raises(CalibroError, match="invalid version"):
        Trace.from_dict({"version": version, "spans": []})


def test_round_trip_preserves_span_identity():
    tracer = Tracer()
    with tracer.span("build"):
        with tracer.span("dex2oat"):
            pass
        with tracer.span("link"):
            pass
    snapshot = tracer.snapshot()
    reloaded = Trace.from_dict(snapshot.to_dict())
    assert [s.span_id for s in reloaded.walk()] == [
        s.span_id for s in snapshot.walk()
    ]
    assert snapshot.to_dict()["version"] == TRACE_SCHEMA_VERSION
    _check_identity(reloaded)


# -- identity under concurrency ----------------------------------------------


def test_span_ids_stay_unique_under_threads():
    tracer = Tracer()
    barrier = threading.Barrier(6)
    snapshots: list[Trace] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        child = Tracer(context=tracer.child_context())
        barrier.wait()
        with obs.thread_tracing(child):
            for step in range(25):
                with obs.span("thread.work", thread=index, step=step):
                    pass
        with lock:
            snapshots.append(child.snapshot())

    with tracer.span("root"):
        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for snapshot in snapshots:
            tracer.adopt(snapshot)
    trace = tracer.snapshot()
    assert sum(1 for _ in trace.walk()) == 1 + 6 * 25
    _check_identity(trace)


def test_sharded_build_trace_keeps_identity_intact():
    dexfile = generate_app(app_spec("Wechat", scale=0.05)).dexfile
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    with obs.tracing() as tracer:
        with BuildService(ServiceConfig(shards=2)) as service:
            service.submit(dexfile, config)
    trace = tracer.snapshot()
    _check_identity(trace)
    # The shard children really ran in other processes and their spans
    # merged under this tracer's trace id.
    shard_spans = [s for s in trace.walk() if s.name == "service.shard.run"]
    assert len(shard_spans) == 2
    assert trace.meta["trace_id"] == tracer.trace_id
