"""Sampled profiling mode (simpleperf's -c N behaviour)."""

from __future__ import annotations

from repro.profiling import profile_app
from repro.runtime import Emulator


def test_sampled_profile_approximates_exact(small_app, baseline_build):
    exact = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers,
    )
    sampled = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers, sample_period=200,
    )
    assert sampled.cycles
    # Scaled sample mass is within a factor-2 band of exact attribution.
    exact_total = exact.total_attributed
    sampled_total = sum(sampled.cycles.values())
    assert 0.5 * exact_total < sampled_total < 2.0 * exact_total


def test_sampled_hot_set_overlaps_exact(small_app, baseline_build):
    """The 80% hot set from a sampled profile must substantially agree
    with the exact one — HfOpti works either way."""
    exact = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers,
    ).hot_filter(0.80)
    sampled = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers, sample_period=100,
    ).hot_filter(0.80)
    assert sampled.hot_names
    overlap = len(exact.hot_names & sampled.hot_names)
    assert overlap >= len(exact.hot_names) // 2


def test_sample_counts_accessible(small_app, baseline_build):
    emu = Emulator(
        baseline_build.oat, small_app.dexfile,
        native_handlers=small_app.native_handlers,
        profile=True, sample_period=500,
    )
    emu.call(small_app.entry_points[0], [9, 9])
    counts = emu.sample_counts()
    assert counts
    assert all(v >= 1 for v in counts.values())
    # profile() scales counts by the period
    assert emu.profile() == {k: v * 500 for k, v in counts.items()}


def test_reset_clears_samples(small_app, baseline_build):
    emu = Emulator(
        baseline_build.oat, small_app.dexfile,
        native_handlers=small_app.native_handlers,
        profile=True, sample_period=500,
    )
    emu.call(small_app.entry_points[0], [9, 9])
    emu.reset_measurements()
    assert not emu.sample_counts()
