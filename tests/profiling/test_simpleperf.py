"""The simpleperf substitute."""

from __future__ import annotations

from repro.profiling import profile_app


def test_profile_report_shape(small_app, baseline_build):
    report = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers,
    )
    assert report.cycles
    assert report.total_run_cycles > 0
    assert report.total_attributed <= report.total_run_cycles
    assert all(r.trap is None for r in report.results)


def test_top_is_sorted(small_app, baseline_build):
    report = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers,
    )
    top = report.top(5)
    assert len(top) <= 5
    assert all(a[1] >= b[1] for a, b in zip(top, top[1:]))


def test_hot_entries_dominate(small_app, baseline_build):
    """Entry loops call a small hot pool repeatedly; the profile must
    reflect that skew (the premise of Fig. 6)."""
    report = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers,
    )
    f = report.hot_filter(0.80)
    assert 0 < len(f.hot_names) < len(report.cycles)
    # hot set covers at least the target share
    assert f.covered_cycles >= 0.8 * f.total_cycles


def test_repetitions_scale_cycles(small_app, baseline_build):
    once = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers, repetitions=1,
    )
    twice = profile_app(
        baseline_build.oat, small_app.dexfile, small_app.ui_script,
        native_handlers=small_app.native_handlers, repetitions=2,
    )
    assert twice.total_run_cycles > once.total_run_cycles
    assert len(twice.results) == 2 * len(once.results)
