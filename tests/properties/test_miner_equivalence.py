"""Engine equivalence: both miners against the brute-force oracle, and
whole builds byte-identical across engines.

The load-bearing claim of the pluggable-engine redesign is that
``--engine`` changes *throughput only*: every consumer sees the same
``(length, count, first)`` triples in the same canonical order, and the
benefit-greedy outliner therefore emits the same OAT bytes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CalibroConfig, build_app
from repro.suffixtree import SuffixArrayMiner, SuffixTreeMiner
from repro.suffixtree.repeats import brute_force_repeats

_SEQ = st.lists(st.integers(0, 6), min_size=1, max_size=48)


def _triples(repeats):
    return [(r.length, r.count, r.first) for r in repeats]


def _assert_miners_match_oracle(seq, *, min_length=1, min_count=2, max_length=None):
    kwargs = dict(min_length=min_length, min_count=min_count, max_length=max_length)
    tree = SuffixTreeMiner(seq)
    array = SuffixArrayMiner(seq)
    tree_reps = tree.repeats(**kwargs)
    array_reps = array.repeats(**kwargs)
    assert _triples(tree_reps) == _triples(array_reps)
    assert _triples(tree_reps) == _triples(brute_force_repeats(seq, **kwargs))
    for a, b in zip(tree_reps, array_reps):
        assert tree.occurrences(a) == array.occurrences(b)


@given(seq=_SEQ)
@settings(max_examples=150)
def test_random_sequences(seq):
    _assert_miners_match_oracle(seq)


@given(seq=_SEQ, min_length=st.integers(1, 4), max_length=st.integers(2, 10))
@settings(max_examples=100)
def test_threshold_combinations(seq, min_length, max_length):
    _assert_miners_match_oracle(
        seq, min_length=min_length, max_length=max(min_length, max_length)
    )


def test_all_equal_adversarial():
    # One giant LCP interval chain: the worst case for interval
    # enumeration and for naive occurrence counting alike.
    _assert_miners_match_oracle([7] * 120)


def test_fibonacci_word_adversarial():
    # Fibonacci words maximize distinct repeated substrings per symbol —
    # the classic suffix-structure stress input.
    a, b = [0], [0, 1]
    while len(b) < 150:
        a, b = b, b + a
    _assert_miners_match_oracle(b[:150])


def test_unique_separators_never_repeat():
    # The §3.3.2 separator device: unique negative symbols must not take
    # part in any repeat under either engine.
    seq = [4, 4, -2, 4, 4, -3, 4, 4]
    for cls in (SuffixTreeMiner, SuffixArrayMiner):
        miner = cls(seq)
        for rep in miner.repeats(min_length=1, min_count=2):
            assert all(s >= 0 for s in seq[rep.first : rep.first + rep.length])


def test_builds_are_byte_identical_across_engines(small_app):
    """The acceptance bar: same OAT bytes under every configuration."""
    dexfile = small_app.dexfile
    hot = {name: 1000 + 17 * i for i, name in enumerate(sorted(dexfile.method_names()))}
    configs = [
        CalibroConfig.baseline(),
        CalibroConfig.cto_ltbo(),
        CalibroConfig.cto_ltbo_plopti(groups=4),
        CalibroConfig.full(hot, groups=4),
    ]
    from dataclasses import replace

    for config in configs:
        tree_build = build_app(dexfile, replace(config, engine="suffixtree"))
        array_build = build_app(dexfile, replace(config, engine="suffixarray"))
        assert tree_build.oat.to_bytes() == array_build.oat.to_bytes(), config.name
        assert array_build.summary()["engine"] == "suffixarray"
