"""Property-based system tests: randomly generated programs must behave
identically before and after Calibro, under every configuration.

Hypothesis generates small straight-line-plus-branches programs directly
(not via the workload generator) so shrinking produces minimal
counterexamples when an invariant breaks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CalibroConfig, build_app
from repro.dex import DexClass, DexFile, Interpreter, MethodBuilder
from repro.runtime import Emulator

_OPS = ("add", "sub", "mul", "xor", "and", "or")


@st.composite
def _program(draw):
    """A dex file of 3-6 small methods with shared instruction material."""
    n_methods = draw(st.integers(3, 6))
    # A shared pool of (op, literal) steps: methods drawing the same
    # steps produce repeated binary sequences for the outliner to find.
    pool = draw(
        st.lists(
            st.tuples(st.sampled_from(_OPS), st.integers(1, 63)),
            min_size=4,
            max_size=8,
        )
    )
    methods = []
    for mi in range(n_methods):
        b = MethodBuilder(f"LP;->m{mi}", num_inputs=2, num_registers=6)
        steps = draw(st.lists(st.integers(0, len(pool) - 1), min_size=2, max_size=10))
        b.move(2, 0)
        branchy = draw(st.booleans())
        if branchy:
            t = b.new_label()
            b.if_cmp(draw(st.sampled_from(["lt", "ge", "eq", "ne"])), 0, 1, t)
            b.binop("add", 2, 2, 1)
            b.bind(t)
        for si in steps:
            op, lit = pool[si]
            b.binop_lit(op, 2, 2, lit)
        if mi > 0 and draw(st.booleans()):
            b.invoke_static(f"LP;->m{mi - 1}", args=(2, 1), dst=3)
            b.binop("xor", 2, 2, 3)
        b.ret(2)
        methods.append(b.build())
    return DexFile(classes=[DexClass("LP;", methods)])


@given(
    dex=_program(),
    args=st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000)),
    use_plopti=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_outlined_program_equals_interpreter(dex, args, use_plopti):
    config = (
        CalibroConfig.cto_ltbo_plopti(2) if use_plopti else CalibroConfig.cto_ltbo()
    )
    build = build_app(dex, config)
    interp = Interpreter(dex)
    emu = Emulator(build.oat, dex)
    for name in dex.method_names():
        want = interp.call(name, list(args))
        got = emu.call(name, list(args))
        assert got.trap is None
        assert got.value == want, name


@given(dex=_program())
@settings(max_examples=25, deadline=None)
def test_outlining_never_grows_code(dex):
    """The benefit model (min_saved >= 1) guarantees monotone non-growth
    of the *code bytes*.  The padded segment can grow by up to 12 bytes
    per added method (ART's 16-byte method alignment) on adversarially
    tiny inputs, so the invariant is asserted on unpadded sizes and the
    segment is bounded by the alignment slack."""
    base = build_app(dex, CalibroConfig.cto())
    out = build_app(dex, CalibroConfig.cto_ltbo())
    unpadded = lambda b: sum(r.size for r in b.oat.methods.values())
    assert unpadded(out) <= unpadded(base)
    slack = 16 * len(out.oat.methods)
    assert out.text_size <= base.text_size + slack


@given(dex=_program())
@settings(max_examples=15, deadline=None)
def test_stackmaps_survive_outlining(dex):
    """Every linked build passes the §3.5 StackMap consistency check —
    the linker runs it, so building without error is the assertion, but
    we also recheck explicitly."""
    from repro.oat.linker import _check_stackmaps

    build = build_app(dex, CalibroConfig.cto_ltbo())
    _check_stackmaps(build.oat)
