"""Table/figure rendering helpers."""

from __future__ import annotations

from repro.reporting import (
    ascii_bars,
    format_bytes,
    format_table,
    pct,
    ratio_row,
    sparkline,
)


def test_pct():
    assert pct(0.1519) == "15.19%"
    assert pct(0.254, digits=1) == "25.4%"


def test_format_bytes_units():
    assert format_bytes(512) == "512B"
    assert format_bytes(2048) == "2.0K"
    assert format_bytes(3 * 1024 * 1024) == "3.0M"


def test_format_table_alignment():
    out = format_table(["App", "Size"], [["Toutiao", 357], ["Wechat", 388]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "App" in lines[1] and "Size" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert lines[3].startswith("Toutiao")
    # columns aligned: separator as wide as rows
    assert all(len(l) <= len(lines[2]) + 2 for l in lines[3:])


def test_ratio_row_matches_paper_format():
    baseline = {"A": 100.0, "B": 200.0}
    values = {"A": 80.0, "B": 170.0}
    row = ratio_row("CTO+LTBO", baseline, values)
    assert row[0] == "CTO+LTBO"
    assert row[1] == "20.00%" and row[2] == "15.00%"
    assert row[3] == "17.50%"  # the AVG column


def test_ratio_row_handles_zero_baseline():
    row = ratio_row("x", {"A": 0.0}, {"A": 5.0})
    assert row[1] == "0.00%"


def test_sparkline_scales_min_to_max():
    line = sparkline([0.0, 0.5, 1.0])
    assert line == "▁▅█"
    assert sparkline([]) == ""
    # A flat series renders mid-height, not a crash on zero range.
    assert sparkline([3.0, 3.0, 3.0]) == "▄▄▄"


def test_sparkline_downsamples_to_width():
    line = sparkline(list(range(100)), width=10)
    assert len(line) == 10
    assert line[0] == "▁" and line[-1] == "█"
    # Width wider than the series leaves it untouched.
    assert len(sparkline([1.0, 2.0], width=10)) == 2


def test_ascii_bars():
    out = ascii_bars({"2-3": 100, "4-7": 50, "8+": 0}, width=10, title="Fig3")
    lines = out.splitlines()
    assert lines[0] == "Fig3"
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    assert lines[3].count("#") == 0
