"""ART runtime shim: heap layout, entrypoints, JNI bridge."""

from __future__ import annotations

import pytest

from repro.compiler import CompiledMethod, dex2oat
from repro.core.metadata import MethodMetadata
from repro.dex import DexClass, DexFile, DexMethod, MethodBuilder
from repro.isa import asm, encode_all, instructions as ins, registers as regs
from repro.oat import layout, link
from repro.runtime import Emulator
from repro.runtime.art import ArtRuntime, GuestTrap


def _framed_call(entrypoint: str) -> list:
    """Frame push + runtime call + frame pop: `blr` writes x30, so any
    method that calls must save/restore the link register, exactly as
    the real prologue/epilogue do."""
    return [
        asm.stp_pre(regs.FP, regs.LR, regs.SP, -16),
        asm.ldr(regs.X9, regs.ART_THREAD_REG, layout.entrypoint_offset(entrypoint)),
        ins.Blr(rn=regs.X9),
        asm.ldr_pair_post(regs.FP, regs.LR, regs.SP, 16),
        ins.Ret(),
    ]


def _oat_with(body):
    code = encode_all(body)
    m = CompiledMethod(
        name="m", code=code,
        metadata=MethodMetadata(method_name="m", code_size=len(code)),
    )
    return link([m], check_stackmaps=False)


class TestEntrypointTable:
    def test_thread_block_holds_stub_addresses(self):
        oat = _oat_with([ins.Ret()])
        rt = ArtRuntime(oat)
        for name, offset in layout.ENTRYPOINT_OFFSETS.items():
            stub = int.from_bytes(
                rt.memory.read_bytes_raw(layout.THREAD_BASE + offset, 8), "little"
            )
            assert rt.is_native_address(stub), name

    def test_alloc_object_layout(self):
        """pAllocObjectResolved: header holds the class idx, fields zeroed."""
        body = (
            asm.mov_imm(regs.X0, 7)            # class idx
            + asm.mov_imm(regs.X1, 3)          # fields
            + _framed_call("pAllocObjectResolved")
        )
        oat = _oat_with(body)
        emu = Emulator(oat)
        result = emu.call("m")
        addr = result.value
        assert addr >= layout.HEAP_BASE
        mem = emu.runtime.memory
        assert mem.read_u64(addr) == 7                      # header
        assert mem.read_u64(addr + 8) == 0                  # field 0 zeroed

    def test_alloc_array_layout(self):
        body = (
            asm.mov_imm(regs.X0, 5)            # length
            + _framed_call("pAllocArrayResolved")
        )
        emu = Emulator(_oat_with(body))
        addr = emu.call("m").value
        assert emu.runtime.memory.read_u64(addr + layout.ARRAY_LENGTH_OFFSET) == 5

    def test_heap_is_bump_allocated(self):
        oat = _oat_with([ins.Ret()])
        rt = ArtRuntime(oat)
        a = rt._bump(24)
        b = rt._bump(8)
        assert b >= a + 24 and b % 8 == 0

    def test_throw_entrypoints_raise(self):
        oat = _oat_with([ins.Ret()])
        rt = ArtRuntime(oat)
        for name, kind in [
            ("pThrowNullPointerException", "null-pointer"),
            ("pThrowArrayIndexOutOfBounds", "array-bounds"),
            ("pThrowDivZero", "div-zero"),
            ("pThrowStackOverflowError", "stack-overflow"),
        ]:
            offset = layout.entrypoint_offset(name)
            stub = int.from_bytes(
                rt.memory.read_bytes_raw(layout.THREAD_BASE + offset, 8), "little"
            )
            with pytest.raises(GuestTrap) as exc:
                rt.dispatch_native(None, stub)
            assert exc.value.kind == kind


class TestJniBridge:
    def _dex(self):
        nat = DexMethod(name="LJ;->nat", num_registers=3, num_inputs=3, is_native=True)
        b = MethodBuilder("LJ;->c", num_inputs=3, num_registers=4)
        b.invoke_static("LJ;->nat", args=(0, 1, 2), dst=3)
        b.ret(3)
        return DexFile(classes=[DexClass("LJ;", [b.build(), nat])])

    def test_arity_respected(self):
        """The bridge passes exactly num_inputs args to the handler."""
        dex = self._dex()
        seen = []

        def handler(args):
            seen.append(list(args))
            return len(args)

        oat = link(dex2oat(dex).methods, dex)
        emu = Emulator(oat, dex, native_handlers={"LJ;->nat": handler})
        result = emu.call("LJ;->c", [10, 20, 30])
        assert result.value == 3
        assert seen == [[10, 20, 30]]

    def test_negative_args_arrive_signed(self):
        dex = self._dex()
        oat = link(dex2oat(dex).methods, dex)
        emu = Emulator(oat, dex, native_handlers={"LJ;->nat": lambda a: a[0]})
        assert emu.call("LJ;->c", [-42, 0, 0]).value == -42

    def test_handler_result_wraps(self):
        dex = self._dex()
        oat = link(dex2oat(dex).methods, dex)
        emu = Emulator(oat, dex, native_handlers={"LJ;->nat": lambda a: 2**64 + 5})
        assert emu.call("LJ;->c", [0, 0, 0]).value == 5

    def test_bad_method_id_traps(self):
        oat = _oat_with(
            asm.mov_imm(regs.X17, 999)
            + _framed_call("pJniBridge")
        )
        emu = Emulator(oat)  # no dexfile: id table empty
        assert emu.call("m").trap == "bad-jni-method"
