"""Branch predictor model and the predictive cycle pipeline."""

from __future__ import annotations

import pytest

from repro.core import CalibroConfig, build_app
from repro.dex import DexClass, DexFile, MethodBuilder
from repro.runtime import BranchPredictor, CycleModel, Emulator


class TestPredictorUnits:
    def test_ras_hit_and_miss(self):
        p = BranchPredictor(penalty=8)
        p.push_call(0x100)
        assert p.predict_return(0x100) == 0
        p.push_call(0x200)
        assert p.predict_return(0x999) == 8
        # empty stack is always a miss
        assert p.predict_return(0x100) == 8

    def test_ras_depth_bound(self):
        p = BranchPredictor(ras_depth=2)
        for addr in (1, 2, 3):
            p.push_call(addr)
        assert p.predict_return(3) == 0
        assert p.predict_return(2) == 0
        assert p.predict_return(1) == p.penalty  # evicted

    def test_bimodal_learns_direction(self):
        p = BranchPredictor(penalty=8)
        # initial weakly-not-taken: first taken mispredicts
        assert p.predict_conditional(0x40, True) == 8
        # counter saturates toward taken
        p.predict_conditional(0x40, True)
        assert p.predict_conditional(0x40, True) == 0
        # one flip mispredicts, then relearns
        assert p.predict_conditional(0x40, False) == 8

    def test_btb_learns_target(self):
        p = BranchPredictor(penalty=8)
        assert p.predict_indirect(0x80, 0x1000) == 8  # cold
        assert p.predict_indirect(0x80, 0x1000) == 0  # warm
        assert p.predict_indirect(0x80, 0x2000) == 8  # retargeted

    def test_rate_and_reset(self):
        p = BranchPredictor()
        p.predict_indirect(0, 1)
        p.predict_indirect(0, 1)
        assert p.mispredict_rate == pytest.approx(0.5)
        p.reset()
        assert p.lookups == 0 and p.mispredicts == 0


class TestPredictivePipeline:
    def _loop_dex(self) -> DexFile:
        b = MethodBuilder("LT;->loop", num_inputs=1, num_registers=4)
        top = b.new_label()
        done = b.new_label()
        b.const(1, 0)
        b.bind(top)
        b.if_z("eq", 0, done)
        b.binop("add", 1, 1, 0)
        b.binop_lit("sub", 0, 0, 1)
        b.goto(top)
        b.bind(done)
        b.ret(1)
        return DexFile(classes=[DexClass("LT;", [b.build()])])

    def test_predictive_cheaper_on_regular_loops(self):
        dex = self._loop_dex()
        build = build_app(dex, CalibroConfig.baseline())
        simple = Emulator(build.oat, dex, cycle_model=CycleModel(pipeline="simple"))
        predictive = Emulator(
            build.oat, dex, cycle_model=CycleModel(pipeline="predictive")
        )
        a = simple.call("LT;->loop", [200])
        b = predictive.call("LT;->loop", [200])
        assert a.value == b.value and a.steps == b.steps
        assert b.cycles < a.cycles  # the loop branch is perfectly predictable

    def test_outlined_calls_nearly_free_when_predicted(self):
        """The RAS makes outlined bl/br-x30 pairs cheap in steady state —
        the microarchitectural claim behind the paper's 1.51%."""
        from repro.workloads import app_spec, generate_app

        app = generate_app(app_spec("Taobao", 0.12))
        base = build_app(app.dexfile, CalibroConfig.cto())
        out = build_app(app.dexfile, CalibroConfig.cto_ltbo())

        def run(build, pipeline):
            emu = Emulator(
                build.oat, app.dexfile, native_handlers=app.native_handlers,
                cycle_model=CycleModel(pipeline=pipeline),
            )
            return sum(
                emu.call(m, list(a)).cycles for m, a in app.ui_script.iterate()
            )

        degr_simple = run(out, "simple") / run(base, "simple") - 1
        degr_pred = run(out, "predictive") / run(base, "predictive") - 1
        assert degr_pred < degr_simple

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="pipeline"):
            CycleModel(pipeline="oracle")

    def test_predictor_stats_exposed(self):
        dex = self._loop_dex()
        build = build_app(dex, CalibroConfig.baseline())
        emu = Emulator(build.oat, dex, cycle_model=CycleModel(pipeline="predictive"))
        emu.call("LT;->loop", [50])
        assert emu.predictor is not None
        assert emu.predictor.lookups > 0
        assert 0.0 <= emu.predictor.mispredict_rate < 0.5
