"""Emulator semantics: per-instruction behaviour through tiny linked
programs, plus traps and measurement channels."""

from __future__ import annotations

import pytest

from repro.compiler import CompiledMethod, dex2oat
from repro.core.metadata import MethodMetadata
from repro.dex import DexClass, DexFile, MethodBuilder
from repro.isa import asm, encode_all, instructions as ins, registers as regs
from repro.oat import link
from repro.runtime import CycleModel, Emulator


def _raw_method(name: str, body: list[ins.Instruction]) -> CompiledMethod:
    """Wrap a hand-written instruction list as a linkable method."""
    code = encode_all(body)
    return CompiledMethod(
        name=name,
        code=code,
        metadata=MethodMetadata(method_name=name, code_size=len(code)),
    )


def _run_raw(body: list[ins.Instruction], args: list[int] | None = None):
    oat = link([_raw_method("raw", body + [ins.Ret()])])
    emu = Emulator(oat)
    return emu.call("raw", args or [])


class TestALUSemantics:
    def test_movz_movk_builds_wide_constant(self):
        r = _run_raw([
            ins.MoveWide(op="movz", rd=0, imm16=0xBEEF),
            ins.MoveWide(op="movk", rd=0, imm16=0xDEAD, hw=1),
        ])
        assert r.value == 0xDEADBEEF

    def test_movn(self):
        r = _run_raw([ins.MoveWide(op="movn", rd=0, imm16=0)])
        assert r.value == -1

    def test_add_sub_reg(self):
        r = _run_raw([asm.add_reg(0, 1, 2)], [30, 12])
        assert r.value == 42
        r = _run_raw([asm.sub_reg(0, 1, 2)], [30, 12])
        assert r.value == 18

    def test_sub_wraps_unsigned(self):
        r = _run_raw([asm.sub_reg(0, 1, 2)], [0, 1])
        assert r.value == -1

    def test_mul_and_div(self):
        r = _run_raw([asm.mul(0, 1, 2)], [-6, 7])
        assert r.value == -42
        r = _run_raw([asm.sdiv(0, 1, 2)], [-7, 2])
        assert r.value == -3  # truncation toward zero

    def test_sdiv_by_zero_is_zero(self):
        """ARM semantics: sdiv never traps; guards are explicit."""
        r = _run_raw([asm.sdiv(0, 1, 2)], [99, 0])
        assert r.value == 0

    def test_logical_ops(self):
        r = _run_raw([ins.LogicalReg(op="and", rd=0, rn=1, rm=2)], [0b1100, 0b1010])
        assert r.value == 0b1000
        r = _run_raw([ins.LogicalReg(op="eor", rd=0, rn=1, rm=2)], [0b1100, 0b1010])
        assert r.value == 0b0110

    def test_xzr_reads_zero_and_discards_writes(self):
        r = _run_raw([
            ins.MoveWide(op="movz", rd=31, imm16=7),  # write to xzr: dropped
            asm.add_reg(0, 31, 1),
        ], [5])
        assert r.value == 5


class TestFlagsAndBranches:
    def _cmp_branch(self, cond: int, a: int, b: int) -> int:
        body = [
            asm.cmp_reg(1, 2),
            ins.BCond(cond=cond, offset=12),
            ins.MoveWide(op="movz", rd=0, imm16=0),
            ins.Ret(),
            ins.MoveWide(op="movz", rd=0, imm16=1),
        ]
        return _run_raw(body, [a, b]).value

    @pytest.mark.parametrize(
        "cond,a,b,taken",
        [
            (ins.Cond.EQ, 5, 5, 1), (ins.Cond.EQ, 5, 6, 0),
            (ins.Cond.NE, 5, 6, 1),
            (ins.Cond.LT, -1, 0, 1), (ins.Cond.LT, 0, -1, 0),
            (ins.Cond.GE, 7, 7, 1),
            (ins.Cond.GT, 8, 7, 1), (ins.Cond.LE, 7, 8, 1),
            (ins.Cond.HS, 0, 0, 1),   # unsigned >=
            (ins.Cond.LO, 0, 1, 1),   # unsigned <
            (ins.Cond.HS, -1, 1, 1),  # -1 is huge unsigned
        ],
    )
    def test_conditions(self, cond, a, b, taken):
        assert self._cmp_branch(cond, a, b) == taken

    def test_cbz_cbnz(self):
        body = [
            ins.Cbz(rt=1, offset=12),
            ins.MoveWide(op="movz", rd=0, imm16=1),
            ins.Ret(),
            ins.MoveWide(op="movz", rd=0, imm16=2),
        ]
        assert _run_raw(body, [0]).value == 2
        assert _run_raw(body, [9]).value == 1

    def test_tbz_tests_single_bit(self):
        body = [
            ins.Tbnz(rt=1, bit=3, offset=12),
            ins.MoveWide(op="movz", rd=0, imm16=0),
            ins.Ret(),
            ins.MoveWide(op="movz", rd=0, imm16=1),
        ]
        assert _run_raw(body, [0b1000]).value == 1
        assert _run_raw(body, [0b0111]).value == 0

    def test_adr_and_literal(self):
        body = [
            ins.LoadLiteral(rt=0, offset=12),
            ins.Ret(),
            ins.Nop(),  # padding so the literal is 8-aligned
            ins.Nop(),
        ]
        # Replace the two nops with an 8-byte literal.
        from repro.compiler import CompiledMethod
        from repro.core.metadata import DataExtent, MethodMetadata

        code = encode_all(body[:2]) + b"\x00\x00\x00\x00" + (777).to_bytes(8, "little")
        m = CompiledMethod(
            name="lit",
            code=code,
            metadata=MethodMetadata(
                method_name="lit", code_size=len(code),
                embedded_data=[DataExtent(start=8, size=12)],
            ),
        )
        oat = link([m])
        assert Emulator(oat).call("lit").value == 777


class TestTrapsAndBudget:
    def test_brk_traps(self):
        r = _run_raw([ins.Brk(imm16=1)])
        assert r.trap == "brk"

    def test_step_budget(self):
        body = [ins.B(offset=0)]  # tight infinite loop: b .
        oat = link([_raw_method("spin", body)])
        emu = Emulator(oat, max_steps=5000)
        from repro.runtime import EmulationError

        with pytest.raises(EmulationError, match="step budget"):
            emu.call("spin")

    def test_executing_embedded_data_detected(self):
        code = b"\xff\xff\xff\xff"
        m = CompiledMethod(
            name="data",
            code=code,
            metadata=MethodMetadata(method_name="data", code_size=4),
        )
        oat = link([m], check_stackmaps=False)
        from repro.runtime import EmulationError

        with pytest.raises(EmulationError, match="embedded data"):
            Emulator(oat).call("data")


class TestMeasurement:
    def test_cycles_accumulate(self, baseline_build, small_app):
        emu = Emulator(baseline_build.oat, small_app.dexfile,
                       native_handlers=small_app.native_handlers)
        entry = small_app.entry_points[0]
        r = emu.call(entry, [1, 2])
        assert r.ok and r.cycles > r.steps > 0

    def test_icache_can_be_disabled(self, baseline_build, small_app):
        model = CycleModel(use_icache=False)
        emu = Emulator(baseline_build.oat, small_app.dexfile,
                       native_handlers=small_app.native_handlers, cycle_model=model)
        r = emu.call(small_app.entry_points[0], [1, 2])
        emu2 = Emulator(baseline_build.oat, small_app.dexfile,
                        native_handlers=small_app.native_handlers)
        r2 = emu2.call(small_app.entry_points[0], [1, 2])
        assert r.steps == r2.steps
        assert r.cycles < r2.cycles  # no miss penalties

    def test_profile_attribution_sums(self, baseline_build, small_app):
        emu = Emulator(baseline_build.oat, small_app.dexfile,
                       native_handlers=small_app.native_handlers, profile=True)
        r = emu.call(small_app.entry_points[0], [3, 4])
        prof = emu.profile()
        assert prof
        # All attributed cycles come from this run; native handler time is
        # not attributed to any method, so attributed <= total.
        assert sum(prof.values()) <= r.cycles

    def test_reset_measurements(self, baseline_build, small_app):
        emu = Emulator(baseline_build.oat, small_app.dexfile,
                       native_handlers=small_app.native_handlers, profile=True)
        emu.call(small_app.entry_points[0], [3, 4])
        emu.reset_measurements()
        assert emu.total_cycles == 0 and emu.total_steps == 0 and not emu.profile()

    def test_text_pages_tracked(self, baseline_build, small_app):
        emu = Emulator(baseline_build.oat, small_app.dexfile,
                       native_handlers=small_app.native_handlers)
        emu.call(small_app.entry_points[0], [3, 4])
        mem = emu.runtime.memory
        text_pages = mem.resident_pages_in(
            baseline_build.oat.text_base,
            baseline_build.oat.text_base + baseline_build.oat.text_size,
        )
        assert text_pages >= 1
