"""Emulator edge cases: 32-bit views, flags, argument handling."""

from __future__ import annotations

import pytest

from repro.compiler import CompiledMethod
from repro.core.metadata import MethodMetadata
from repro.isa import asm, encode_all, instructions as ins
from repro.oat import link
from repro.runtime import Emulator


def _run(body, args=None):
    code = encode_all(body + [ins.Ret()])
    m = CompiledMethod(
        name="edge", code=code,
        metadata=MethodMetadata(method_name="edge", code_size=len(code)),
    )
    return Emulator(link([m])).call("edge", args or [])


class Test32BitViews:
    def test_w_register_ops_zero_extend(self):
        # add w0, w1, w2 with 64-bit garbage in the sources
        r = _run([ins.AddSubReg(op="add", rd=0, rn=1, rm=2, sf=False)],
                 [0xFFFF_FFFF_0000_0001, 0x2])
        assert r.value == 3  # upper halves ignored, result zero-extended

    def test_w_sub_wraps_at_32(self):
        r = _run([ins.AddSubReg(op="sub", rd=0, rn=1, rm=2, sf=False)], [0, 1])
        assert r.value == 0xFFFF_FFFF  # not -1: w-result is zero-extended

    def test_cbz_w_view(self):
        # w view of x1 is zero even though the 64-bit value is not
        body = [
            ins.Cbz(rt=1, offset=12, sf=False),
            ins.MoveWide(op="movz", rd=0, imm16=1),
            ins.Ret(),
            ins.MoveWide(op="movz", rd=0, imm16=2),
        ]
        assert _run(body, [0x1_0000_0000]).value == 2

    def test_movewide_32bit_clears_upper(self):
        body = [
            asm.mov(0, 1),
            ins.MoveWide(op="movk", rd=0, imm16=0xAAAA, sf=False),
        ]
        r = _run(body, [0xFFFF_FFFF_FFFF_0000])
        assert r.value == 0xFFFF_AAAA  # 32-bit movk zero-extends

    def test_flags_from_32bit_cmp(self):
        # cmp w1, w2 where only the low words are equal
        body = [
            ins.AddSubReg(op="sub", rd=31, rn=1, rm=2, set_flags=True, sf=False),
            ins.BCond(cond=ins.Cond.EQ, offset=12),
            ins.MoveWide(op="movz", rd=0, imm16=0),
            ins.Ret(),
            ins.MoveWide(op="movz", rd=0, imm16=1),
        ]
        assert _run(body, [0x1_0000_0005, 0x2_0000_0005]).value == 1


class TestFlagsOverflow:
    def test_signed_overflow_sets_v(self):
        # INT64_MAX - (-1) overflows: GT (signed) must NOT hold even
        # though the raw subtraction result looks positive.
        body = [
            asm.cmp_reg(1, 2),
            ins.BCond(cond=ins.Cond.GT, offset=12),
            ins.MoveWide(op="movz", rd=0, imm16=0),
            ins.Ret(),
            ins.MoveWide(op="movz", rd=0, imm16=1),
        ]
        assert _run(body, [2**63 - 1, -1]).value == 1  # max > -1: taken
        assert _run(body, [-(2**63), 1]).value == 0    # min > 1: not taken

    def test_adds_carry(self):
        body = [
            ins.AddSubReg(op="add", rd=0, rn=1, rm=2, set_flags=True),
            ins.BCond(cond=ins.Cond.HS, offset=12),  # carry set?
            ins.MoveWide(op="movz", rd=0, imm16=0),
            ins.Ret(),
            ins.MoveWide(op="movz", rd=0, imm16=1),
        ]
        assert _run(body, [-1, 1]).value == 1  # unsigned wrap → carry
        assert _run(body, [1, 1]).value == 0


class TestCallArguments:
    def test_too_many_args_rejected(self):
        with pytest.raises(ValueError, match="at most 6"):
            _run([ins.Nop()], [1, 2, 3, 4, 5, 6, 7])

    def test_x0_carries_artmethod_on_entry(self):
        # On entry x0 holds the called method's ArtMethod* (ART ABI).
        code = encode_all([ins.Ret()])
        m = CompiledMethod(
            name="who", code=code,
            metadata=MethodMetadata(method_name="who", code_size=len(code)),
        )
        oat = link([m])
        emu = Emulator(oat)
        assert emu.call("who").value == oat.artmethod_address("who")

    def test_measurements_accumulate_across_calls(self):
        code = encode_all([ins.Nop(), ins.Ret()])
        m = CompiledMethod(
            name="n", code=code,
            metadata=MethodMetadata(method_name="n", code_size=len(code)),
        )
        emu = Emulator(link([m]))
        emu.call("n")
        first = emu.total_steps
        emu.call("n")
        assert emu.total_steps == 2 * first
