"""Emulator semantics of shifts, csel, min/max — cross-checked against
the reference interpreter on the full pipeline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CalibroConfig, build_app
from repro.dex import DexClass, DexFile, Interpreter, MethodBuilder
from repro.runtime import Emulator

_OPS = ("shl", "shr", "ushr", "min", "max")


def _op_fixture():
    methods = []
    for op in _OPS:
        b = MethodBuilder(f"LX;->{op}", num_inputs=2, num_registers=3)
        b.binop(op, 2, 0, 1)
        b.ret(2)
        methods.append(b.build())
    dex = DexFile(classes=[DexClass("LX;", methods)])
    build = build_app(dex, CalibroConfig.baseline())
    return dex, Emulator(build.oat, dex)


_DEX, _EMU = _op_fixture()
_INTERP = Interpreter(_DEX)


@pytest.mark.parametrize("op", _OPS)
@given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
@settings(max_examples=60, deadline=None)
def test_op_parity(op, a, b):
    want = _INTERP.call(f"LX;->{op}", [a, b])
    got = _EMU.call(f"LX;->{op}", [a, b])
    assert got.trap is None
    assert got.value == want, (op, a, b)


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        ("shl", 1, 4, 16),
        ("shl", 1, 64, 1),          # amount mod 64
        ("shl", 1, 63, -(2**63)),   # into the sign bit
        ("shr", -8, 1, -4),         # arithmetic
        ("ushr", -8, 1, (2**64 - 8) >> 1 - (2**63) if False else 0x7FFFFFFFFFFFFFFC),
        ("min", -5, 3, -5),
        ("max", -5, 3, 3),
        ("min", 7, 7, 7),
    ],
)
def test_known_values(op, a, b, expected):
    got = _EMU.call(f"LX;->{op}", [a, b])
    assert got.value == expected


def test_csel_in_generated_code():
    """min/max must actually compile to cmp + csel."""
    from repro.compiler import dex2oat
    from repro.isa import decode_all, instructions as ins

    b = MethodBuilder("LY;->m", num_inputs=2, num_registers=3)
    b.binop("min", 2, 0, 1)
    b.ret(2)
    dex = DexFile(classes=[DexClass("LY;", [b.build()])])
    cm = dex2oat(dex).methods[0]
    kinds = [type(i).__name__ for i in decode_all(cm.code)]
    assert "CSel" in kinds
