"""Guest memory: sparse pages, guards, residency."""

from __future__ import annotations

import pytest

from repro.runtime import Memory, MemoryFault


def test_zero_fill_on_first_touch():
    mem = Memory()
    assert mem.read_u64(0x5000) == 0


def test_write_read_roundtrip():
    mem = Memory()
    mem.write_u64(0x4000, 0xDEADBEEFCAFEF00D)
    assert mem.read_u64(0x4000) == 0xDEADBEEFCAFEF00D
    mem.write_u32(0x4010, 0x1234)
    assert mem.read_u32(0x4010) == 0x1234


def test_cross_page_access():
    mem = Memory()
    addr = 0x5000 - 4  # straddles two pages for a u64
    mem.write_u64(addr, 0x1122334455667788)
    assert mem.read_u64(addr) == 0x1122334455667788


def test_guard_faults():
    mem = Memory()
    mem.add_guard(0, 4096, "null-pointer")
    with pytest.raises(MemoryFault) as exc:
        mem.read_u64(8)
    assert exc.value.kind == "null-pointer"
    with pytest.raises(MemoryFault):
        mem.write_u32(100, 1)


def test_load_image_and_raw_read():
    mem = Memory()
    mem.load_image(0x10000, b"hello world!")
    assert mem.read_bytes_raw(0x10000, 12) == b"hello world!"
    # loader path doesn't count as touched
    assert not mem.touched_pages


def test_residency_accounting():
    mem = Memory()
    mem.read_u64(0x10000)
    mem.read_u64(0x10008)       # same page
    mem.read_u64(0x20000)       # different page
    assert mem.resident_pages_in(0x10000, 0x30000) == 2
    mem.reset_residency()
    assert mem.resident_pages_in(0, 1 << 32) == 0


def test_residency_range_is_half_open():
    mem = Memory()
    mem.read_u64(0x3000)
    assert mem.resident_pages_in(0x3000, 0x4000) == 1
    assert mem.resident_pages_in(0x4000, 0x5000) == 0
