"""Emulator-as-oracle: merging must not change architectural state.

For every paper app, the same UI script runs through the emulator on
the build *before* each size-reduction pass and *after* it — pre/post
outlining, then pre/post merging — and must produce identical results
and trap kinds.  This is the runtime end of the merge pass's safety
argument: folded names resolve to the canonical body, thunks load
their parameters and jump, and no caller can tell the difference.
"""

from __future__ import annotations

import pytest

from repro.core import CalibroConfig, build_app
from repro.runtime.emulator import Emulator
from repro.workloads import APP_NAMES, app_spec, generate_app

_SCALE = 0.05


def _run_script(app, build):
    emulator = Emulator(
        build.oat, app.dexfile, native_handlers=app.native_handlers
    )
    out = []
    for method, args in app.ui_script.iterate():
        result = emulator.call(method, list(args))
        out.append((method, tuple(args), result.value, result.trap))
    return out


@pytest.mark.parametrize("name", APP_NAMES)
def test_pre_and_post_pass_builds_agree(name):
    app = generate_app(app_spec(name, _SCALE))
    pre_outline = build_app(app.dexfile, CalibroConfig.cto())
    post_outline = build_app(app.dexfile, CalibroConfig.cto_ltbo_plopti(2))
    post_merge = build_app(
        app.dexfile, CalibroConfig.cto_ltbo_plopti(2).with_merging()
    )

    reference = _run_script(app, pre_outline)
    assert _run_script(app, post_outline) == reference
    assert _run_script(app, post_merge) == reference


def test_merge_pass_actually_fired_somewhere():
    """The oracle above is vacuous if merging never finds work at this
    scale; pin that at least one app folds or merges something."""
    total = 0
    for name in APP_NAMES:
        app = generate_app(app_spec(name, _SCALE))
        build = build_app(
            app.dexfile, CalibroConfig.cto_ltbo_plopti(2).with_merging()
        )
        total += build.merge.stats.functions_folded
        total += build.merge.stats.functions_merged
    assert total > 0
