"""BuildService determinism and caching semantics.

The load-bearing guarantee: a pooled + cached service build emits an
OAT image *bit-identical* to a serial, uncached ``build_app`` — across
a global tree, PlOpti partitions, and an HfOpti hot mask — whether the
result was computed cold or assembled from cache hits.
"""

from __future__ import annotations

import pytest

from repro.core import CalibroConfig, build_app
from repro.core.errors import ServiceError
from repro.core.hotfilter import HotFunctionFilter
from repro.service import BuildRequest, BuildService, ServiceConfig


def _hot_filter(dexfile) -> HotFunctionFilter:
    # A deterministic fake profile: every method's cycle count derives
    # from its name, so the 80% hot set is stable across runs.
    names = sorted(dexfile.method_names())
    profile = {name: 1000 + 137 * i for i, name in enumerate(names)}
    return HotFunctionFilter.from_profile(profile, coverage=0.80)


def _configs(dexfile):
    return [
        CalibroConfig.cto_ltbo(),                   # groups=1, global tree
        CalibroConfig.cto_ltbo_plopti(groups=4),    # PlOpti partitions
        CalibroConfig.cto_ltbo_plopti(groups=4).with_hot_filter(_hot_filter(dexfile)),
    ]


def test_cached_pooled_builds_are_bit_identical_to_serial(tmp_path, small_app):
    dexfile = small_app.dexfile
    for config in _configs(dexfile):
        reference = build_app(dexfile, config).oat
        with BuildService(ServiceConfig(cache_dir=tmp_path / config.name, max_workers=2)) as svc:
            cold = svc.submit(dexfile, config, label="cold")
            warm = svc.submit(dexfile, config, label="warm")
        assert cold.build.oat.text == reference.text, config.name
        assert warm.build.oat.text == reference.text, config.name
        assert cold.build.oat.to_bytes() == reference.to_bytes(), config.name
        assert warm.build.oat.to_bytes() == reference.to_bytes(), config.name


def test_warm_rebuild_hits_every_cache(tmp_path, small_app):
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    with BuildService(ServiceConfig(cache_dir=tmp_path, max_workers=1)) as svc:
        cold = svc.submit(small_app.dexfile, config)
        warm = svc.submit(small_app.dexfile, config)
    assert not cold.compile_cached and cold.cached_groups == 0
    assert warm.compile_cached
    assert warm.cached_groups == warm.total_groups == 4
    assert warm.build.summary()["cached_groups"] == 4


def test_cache_persists_across_service_instances(tmp_path, small_app):
    config = CalibroConfig.cto_ltbo_plopti(groups=2)
    with BuildService(ServiceConfig(cache_dir=tmp_path)) as first:
        first.submit(small_app.dexfile, config)
    with BuildService(ServiceConfig(cache_dir=tmp_path)) as second:
        rebuilt = second.submit(small_app.dexfile, config)
    assert rebuilt.compile_cached
    assert rebuilt.cached_groups == rebuilt.total_groups == 2
    assert second.cache.stats.disk_hits >= 3  # compile result + both groups


def test_batch_shares_the_cache_between_requests(small_app):
    config = CalibroConfig.cto_ltbo_plopti(groups=2)
    with BuildService() as svc:  # memory-only cache
        reports = svc.build_many([
            BuildRequest(small_app.dexfile, config, label="a"),
            BuildRequest(small_app.dexfile, config, label="b"),
        ])
    assert [r.label for r in reports] == ["a", "b"]
    assert reports[1].compile_cached and reports[1].cached_groups == 2
    assert svc.builds_completed == 2


def test_report_summary_extends_the_build_summary(small_app):
    with BuildService() as svc:
        report = svc.submit(small_app.dexfile, CalibroConfig.cto_ltbo(), label="x")
    summary = report.summary()
    from repro.core import SUMMARY_SCHEMA_VERSION

    assert summary["schema_version"] == SUMMARY_SCHEMA_VERSION
    assert summary["engine"] == "suffixtree"
    assert summary["label"] == "x"
    assert summary["compile_cached"] is False
    assert summary["total_groups"] == 1
    assert summary["seconds"] >= summary["build_seconds"] >= 0


def test_stats_document(small_app):
    with BuildService() as svc:
        svc.submit(small_app.dexfile, CalibroConfig.cto_ltbo())
        stats = svc.stats()
    assert stats["builds"] == 1
    assert stats["cache"]["stores"] >= 2  # compile result + the group
    assert set(stats["pool"]) == {
        "tasks", "timeouts", "failures", "retries", "serial_fallbacks", "restarts",
    }


def test_closed_service_rejects_builds(small_app):
    svc = BuildService()
    svc.close()
    with pytest.raises(ServiceError):
        svc.submit(small_app.dexfile)
