"""The content-addressed outline cache: keys, rebranding, disk tier."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.compiler.driver import dex2oat
from repro.core.candidates import select_candidates
from repro.core.errors import ServiceError
from repro.core.outline import DEFAULT_MAX_LENGTH, DEFAULT_MIN_LENGTH, DEFAULT_MIN_SAVED
from repro.core.parallel import _worker
from repro.service import OutlineCache, fingerprint_methods


@pytest.fixture(scope="module")
def candidates(small_app):
    result = dex2oat(small_app.dexfile, cto=True)
    return select_candidates(list(result.methods)).candidates


def _payload(candidates, prefix="MethodOutliner$g0", min_length=DEFAULT_MIN_LENGTH,
             engine="suffixtree"):
    return (
        candidates,
        frozenset(),
        min_length,
        DEFAULT_MAX_LENGTH,
        DEFAULT_MIN_SAVED,
        engine,
        prefix,
    )


def test_group_key_is_stable_and_content_sensitive(candidates):
    payload = _payload(candidates)
    key = OutlineCache.group_key(payload)
    assert key == OutlineCache.group_key(_payload(candidates))
    assert len(key) == 64  # sha256 hex
    # Thresholds are key material ...
    assert key != OutlineCache.group_key(_payload(candidates, min_length=3))
    # ... the hot mask is key material ...
    hot = (candidates, frozenset({candidates[0][1].name}), DEFAULT_MIN_LENGTH,
           DEFAULT_MAX_LENGTH, DEFAULT_MIN_SAVED, "suffixtree", "MethodOutliner$g0")
    assert key != OutlineCache.group_key(hot)
    # ... the engine is key material ...
    assert key != OutlineCache.group_key(_payload(candidates, engine="suffixarray"))
    # ... the symbol prefix is deliberately not.
    assert key == OutlineCache.group_key(_payload(candidates, prefix="Other$g7"))


def test_no_hit_across_engines(candidates):
    """Results computed under one engine must never serve another: each
    backend's cached bytes stay attributable to the engine that made
    them, even though the engines are output-identical."""
    cache = OutlineCache()
    tree_payload = _payload(candidates, engine="suffixtree")
    cache.store_group(tree_payload, _worker(tree_payload))
    assert cache.lookup_group(tree_payload) is not None
    assert cache.lookup_group(_payload(candidates, engine="suffixarray")) is None


def test_fingerprint_is_order_sensitive(candidates):
    methods = [m for _, m in candidates[:4]]
    assert fingerprint_methods(methods) == fingerprint_methods(list(methods))
    assert fingerprint_methods(methods) != fingerprint_methods(methods[::-1])


def test_hit_rebrands_to_the_requested_prefix(candidates):
    cache = OutlineCache()
    stored = _payload(candidates, prefix="MethodOutliner$g0")
    cache.store_group(stored, _worker(stored))

    wanted = _payload(candidates, prefix="Round1$g3")
    hit = cache.lookup_group(wanted)
    assert hit is not None
    fresh = _worker(wanted)
    assert [m.name for m in hit.outlined] == [m.name for m in fresh.outlined]
    assert [m.code for m in hit.outlined] == [m.code for m in fresh.outlined]
    assert set(hit.rewritten) == set(fresh.rewritten)
    for index in hit.rewritten:
        assert hit.rewritten[index].code == fresh.rewritten[index].code
        assert [r.symbol for r in hit.rewritten[index].relocations] == [
            r.symbol for r in fresh.rewritten[index].relocations
        ]


def test_miss_then_hit_then_stats(candidates):
    cache = OutlineCache()
    payload = _payload(candidates)
    assert cache.lookup_group(payload) is None
    cache.store_group(payload, _worker(payload))
    assert cache.lookup_group(payload) is not None
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.stores == 1 and cache.stats.hit_rate == 0.5


def test_disk_round_trip_across_instances(tmp_path, candidates):
    payload = _payload(candidates)
    writer = OutlineCache(tmp_path)
    writer.store_group(payload, _worker(payload))
    assert writer.disk_bytes() > 0

    reader = OutlineCache(tmp_path)
    assert reader.lookup_group(payload) is not None
    assert reader.stats.disk_hits == 1
    # The entry was promoted to memory: a second lookup skips the disk.
    assert reader.lookup_group(payload) is not None
    assert reader.stats.disk_hits == 1 and reader.stats.hits == 2


def test_corrupt_disk_entry_self_heals(tmp_path):
    cache = OutlineCache(tmp_path)
    cache.store_object("deadbeef00", b"payload")
    [path] = [p for p in tmp_path.rglob("*.bin")]
    path.write_bytes(b"not a pickle")
    fresh = OutlineCache(tmp_path)
    assert fresh.lookup_object("deadbeef00") is None
    assert not path.exists()


def test_format_version_mismatch_is_a_miss(tmp_path):
    cache = OutlineCache(tmp_path)
    cache.store_object("deadbeef11", b"payload")
    [path] = [p for p in tmp_path.rglob("*.bin")]
    path.write_bytes(pickle.dumps({"version": 999, "value": b"stale"}))
    fresh = OutlineCache(tmp_path)
    assert fresh.lookup_object("deadbeef11") is None


def test_lru_eviction_is_size_bounded_and_recency_aware(tmp_path):
    blob = b"x" * 2000
    cache = OutlineCache(tmp_path, max_bytes=5000, memory_entries=1)
    cache.store_object("aa" * 32, blob)
    time.sleep(0.02)
    cache.store_object("bb" * 32, blob)
    time.sleep(0.02)
    assert cache.stats.evictions == 0
    # Touch "aa" so "bb" becomes the least recently used entry; the
    # memory tier holds one entry, so this read goes to disk (utime).
    assert cache.lookup_object("aa" * 32) is not None
    time.sleep(0.02)
    cache.store_object("cc" * 32, blob)  # 3 * ~2KB > 5000 -> evict
    assert cache.stats.evictions >= 1
    assert cache.disk_bytes() <= 5000

    fresh = OutlineCache(tmp_path, max_bytes=5000)
    assert fresh.lookup_object("bb" * 32) is None  # the LRU victim
    assert fresh.lookup_object("aa" * 32) is not None
    assert fresh.lookup_object("cc" * 32) is not None


def test_eviction_drops_the_bytes_gauge(tmp_path):
    """``service.cache.bytes`` reports the *current* disk tier
    (``gauge_set``): eviction must pull the gauge down, not leave the
    pre-eviction peak standing."""
    from repro import observability as obs

    with obs.tracing() as tracer:
        cache = OutlineCache(tmp_path, max_bytes=5000, memory_entries=1)
        cache.store_object("aa" * 32, b"x" * 4000)
        peak = tracer.gauges["service.cache.bytes"]
        time.sleep(0.02)
        cache.store_object("bb" * 32, b"y" * 800)
        time.sleep(0.02)
        cache.store_object("cc" * 32, b"z" * 800)  # over budget: evict "aa"
    assert cache.stats.evictions >= 1
    gauge = tracer.gauges["service.cache.bytes"]
    assert gauge == cache.disk_bytes()
    assert gauge < peak


def test_clear_drops_both_tiers(tmp_path):
    cache = OutlineCache(tmp_path)
    cache.store_object("ee" * 32, b"v")
    cache.clear()
    assert cache.disk_bytes() == 0
    assert cache.lookup_object("ee" * 32) is None


def test_constructor_validation():
    with pytest.raises(ServiceError):
        OutlineCache(max_bytes=0)
    with pytest.raises(ServiceError):
        OutlineCache(memory_entries=0)


# -- keyed chunk API (the graph's view of the cache) --------------------------


def test_lookup_chunk_matches_lookup_group(candidates):
    """``lookup_chunk(group_key(p), prefix)`` is exactly ``lookup_group``
    spelled with a precomputed key — the graph layer relies on the two
    never diverging."""
    cache = OutlineCache()
    payload = _payload(candidates)
    key = OutlineCache.group_key(payload)
    cache.store_chunk(key, payload[6], _worker(payload))
    via_key = cache.lookup_chunk(key, payload[6])
    via_payload = cache.lookup_group(payload)
    assert via_key is not None and via_payload is not None
    assert [m.name for m in via_key.outlined] == [
        m.name for m in via_payload.outlined
    ]


def test_lookup_chunk_rebrands_stored_prefix(candidates):
    """Regression: a chunk stored through the keyed API under one
    symbol prefix must come back rebranded when a graph node asks for
    it under another — outlined names, callsite relocations and
    decisions all move to the new prefix."""
    cache = OutlineCache()
    payload = _payload(candidates, prefix="PrefixA$g0")
    cache.store_chunk(OutlineCache.group_key(payload), "PrefixA$g0", _worker(payload))

    hit = cache.lookup_chunk(OutlineCache.group_key(payload), "PrefixB$g5")
    assert hit is not None
    fresh = _worker(_payload(candidates, prefix="PrefixB$g5"))
    assert [m.name for m in hit.outlined] == [m.name for m in fresh.outlined]
    assert all(m.name.startswith("PrefixB$g5$") for m in hit.outlined)
    for index in hit.rewritten:
        assert [r.symbol for r in hit.rewritten[index].relocations] == [
            r.symbol for r in fresh.rewritten[index].relocations
        ]
    assert [d.name for d in hit.decisions] == [d.name for d in fresh.decisions]
