"""The disk cache under true concurrency: many processes, one directory.

The shared-cache layer leans entirely on the disk tier's multi-process
invariants — unique per-writer staging names, atomic publish, races
degrading to misses, orphan-tmp sweeping, self-healing reads.  This
suite holds each invariant in isolation (with the race simulated
deterministically) and then all of them at once: concurrent writer,
reader and eviction-pressure *processes* hammering one directory, with
and without cache-site faults armed.  No corrupt value may ever be
returned, no process may die on an unhandled exception, and the size
bound must hold once the dust settles.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time

import pytest

from repro import observability as obs
from repro.service import OutlineCache
from repro.service.faults import FaultPlan, armed

#: Uniform disk budget for the stress scenarios — small enough that the
#: workload overflows it (eviction runs concurrently with reads and
#: writes), large enough that entries survive long enough to be read.
MAX_BYTES = 60_000

VALUE_SIZE = 2_000


def _key(index: int) -> str:
    return hashlib.sha256(f"stress-{index}".encode()).hexdigest()


def _value_for(key: str) -> bytes:
    """Deterministic key → value mapping: any process can verify any
    hit without coordination."""
    seed = hashlib.sha256(key.encode()).digest()
    return (seed * (VALUE_SIZE // len(seed) + 1))[:VALUE_SIZE]


def _writer_proc(directory: str, keys: list[str], rounds: int) -> None:
    cache = OutlineCache(directory, max_bytes=MAX_BYTES, memory_entries=1)
    for _ in range(rounds):
        for key in keys:
            cache.store_object(key, _value_for(key))


def _reader_proc(directory: str, keys: list[str], rounds: int) -> None:
    cache = OutlineCache(directory, max_bytes=MAX_BYTES, memory_entries=1)
    for _ in range(rounds):
        for key in keys:
            hit = cache.lookup_object(key)
            if hit is not None and hit != _value_for(key):
                os._exit(9)  # a corrupt hit is the one unforgivable sin


def _evictor_proc(directory: str, rounds: int) -> None:
    """Eviction pressure: a tiny-budget handle whose every store runs a
    full eviction pass over everyone else's entries."""
    cache = OutlineCache(directory, max_bytes=VALUE_SIZE * 2, memory_entries=1)
    for round_index in range(rounds):
        key = hashlib.sha256(f"churn-{round_index}".encode()).hexdigest()
        cache.store_object(key, _value_for(key))


def _run_stress(tmp_path, *, plan: FaultPlan | None = None) -> None:
    keys = [_key(i) for i in range(40)]
    spawn = multiprocessing.get_context("spawn")
    procs = [
        *(
            spawn.Process(target=_writer_proc, args=(str(tmp_path), keys, 3))
            for _ in range(3)
        ),
        *(
            spawn.Process(target=_reader_proc, args=(str(tmp_path), keys, 6))
            for _ in range(3)
        ),
        *(
            spawn.Process(target=_evictor_proc, args=(str(tmp_path), 10))
            for _ in range(2)
        ),
    ]
    env_plan = plan.to_env() if plan is not None else None
    if env_plan is not None:
        os.environ["CALIBRO_FAULTS"] = env_plan
    try:
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            if proc.is_alive():
                proc.terminate()
                pytest.fail("stress process wedged")
    finally:
        if env_plan is not None:
            os.environ.pop("CALIBRO_FAULTS", None)
    assert [proc.exitcode for proc in procs] == [0] * len(procs)
    # No torn or corrupt entries survived: every key either misses or
    # round-trips its exact deterministic value.
    cache = OutlineCache(tmp_path, max_bytes=MAX_BYTES)
    for key in keys:
        hit = cache.lookup_object(key)
        assert hit is None or hit == _value_for(key)
    # One more store runs a clean eviction pass; the bound must hold.
    cache.store_object(_key(1000), _value_for(_key(1000)))
    assert cache.disk_bytes() <= MAX_BYTES


def test_concurrent_writers_readers_and_evictors(tmp_path):
    _run_stress(tmp_path)


def test_stress_survives_faults_on_every_cache_site(tmp_path):
    """With ``error`` faults firing at ~40% of cache.read / cache.write /
    cache.evict draws inside the stress children, every injection must
    degrade to a miss or a skipped pass — never an unhandled exception
    (a non-zero exit) and never a corrupt hit."""
    _run_stress(tmp_path, plan=FaultPlan(seed=11, error=0.4))


# -- the per-race unit fixes --------------------------------------------------


def test_utime_race_with_an_evictor_is_a_hit_not_an_error(tmp_path, monkeypatch):
    """Regression: the post-read LRU re-touch used to propagate
    ``FileNotFoundError`` when a concurrent evictor deleted the entry
    between the read and the ``os.utime`` — with the value already in
    hand."""
    writer = OutlineCache(tmp_path)
    writer.store_object(_key(0), b"payload")

    def _vanished(path, *args, **kwargs):
        raise FileNotFoundError(path)

    monkeypatch.setattr(os, "utime", _vanished)
    reader = OutlineCache(tmp_path)  # fresh memory tier: the read hits disk
    assert reader.lookup_object(_key(0)) == b"payload"
    assert reader.stats.disk_hits == 1


def test_staging_names_are_unique_per_writer(tmp_path):
    """Two writers (or two threads of one process) publishing the same
    key must never interleave bytes into one temp file: staging names
    carry the pid and a process-local sequence number."""
    cache = OutlineCache(tmp_path)
    first = cache._tmp_path(_key(0))
    second = cache._tmp_path(_key(0))
    assert first != second
    assert f".{os.getpid()}." in first.name
    assert first.name.endswith(".tmp")


def test_failed_publish_cleans_its_staging_file(tmp_path, monkeypatch):
    cache = OutlineCache(tmp_path)

    def _disk_full(src, dst):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os, "replace", _disk_full)
    cache.store_object(_key(1), b"payload")  # must not raise
    monkeypatch.undo()
    assert not list(tmp_path.rglob("*.tmp"))
    assert OutlineCache(tmp_path).lookup_object(_key(1)) is None


def test_eviction_sweeps_stale_orphan_tmps_only(tmp_path):
    cache = OutlineCache(tmp_path, max_bytes=MAX_BYTES)
    bucket = tmp_path / "ab"
    bucket.mkdir()
    orphan = bucket / "deadbeef.12345.0.tmp"
    orphan.write_bytes(b"abandoned by a crashed writer")
    stale = time.time() - 3600
    os.utime(orphan, (stale, stale))
    live = bucket / "deadbeef.12345.1.tmp"
    live.write_bytes(b"a live writer's in-flight entry")

    cache.store_object(_key(2), b"payload")  # store -> eviction -> sweep
    assert not orphan.exists()
    assert live.exists()


def test_corrupt_entry_unlink_tolerates_losing_the_race(tmp_path, monkeypatch):
    """Self-healing a torn entry races other readers healing the same
    entry; losing the unlink race is a plain miss."""
    cache = OutlineCache(tmp_path)
    cache.store_object(_key(3), b"payload")
    [path] = list(tmp_path.rglob("*.bin"))
    path.write_bytes(b"not a pickle")
    original_unlink = os.unlink

    def _already_healed(target, *args, **kwargs):
        original_unlink(target, *args, **kwargs)
        raise FileNotFoundError(target)

    monkeypatch.setattr(os, "unlink", _already_healed)
    assert OutlineCache(tmp_path).lookup_object(_key(3)) is None


def test_clear_resets_stats_and_the_bytes_gauge(tmp_path):
    """Regression: ``clear()`` used to leave the ``service.cache.bytes``
    gauge at its pre-clear value and keep accumulating hit-rate stats
    across the wipe."""
    with obs.tracing() as tracer:
        cache = OutlineCache(tmp_path)
        cache.store_object(_key(4), b"payload")
        assert cache.lookup_object(_key(4)) is not None
        assert tracer.gauges["service.cache.bytes"] > 0
        (tmp_path / _key(4)[:2] / "junk.tmp").write_bytes(b"orphan")
        cache.clear()
        assert tracer.gauges["service.cache.bytes"] == 0
    assert cache.stats.hits == 0 and cache.stats.stores == 0
    assert cache.stats.lookups == 0
    assert cache.disk_bytes() == 0
    assert not list(tmp_path.rglob("*.tmp"))


# -- the cache fault sites (in-parent error plans) ----------------------------


def test_read_fault_is_a_miss_and_leaves_the_entry(tmp_path):
    cache = OutlineCache(tmp_path)
    key = _key(5)
    cache.store_object(key, b"payload")
    plan = FaultPlan(
        seed=1, error=1.0, match=(f"cache.read:{key[:12]}",), in_parent=True
    )
    reader = OutlineCache(tmp_path)
    with armed(plan):
        assert reader.lookup_object(key) is None
        assert reader.stats.misses == 1
    # The injected miss must not have healed-away the good entry.
    assert reader.lookup_object(key) == b"payload"


def test_write_fault_skips_the_disk_store(tmp_path):
    key = _key(6)
    plan = FaultPlan(
        seed=1, error=1.0, match=(f"cache.write:{key[:12]}",), in_parent=True
    )
    cache = OutlineCache(tmp_path)
    with armed(plan):
        cache.store_object(key, b"payload")
    assert cache.disk_bytes() == 0
    assert OutlineCache(tmp_path).lookup_object(key) is None


def test_evict_fault_skips_one_pass_then_recovers(tmp_path):
    blob = b"x" * 2000
    first, second, third = _key(7), _key(8), _key(9)
    plan = FaultPlan(
        seed=1,
        error=1.0,
        match=(f"cache.evict:{second[:12]}",),
        in_parent=True,
    )
    cache = OutlineCache(tmp_path, max_bytes=3000, memory_entries=1)
    cache.store_object(first, blob)
    with armed(plan):
        cache.store_object(second, blob)  # over budget, eviction skipped
        assert cache.disk_bytes() > 3000
        assert cache.stats.evictions == 0
    cache.store_object(third, blob)  # next pass restores the bound
    assert cache.disk_bytes() <= 3000
    assert cache.stats.evictions >= 1


def test_faulted_entries_stay_uncorrupted(tmp_path):
    """A write fault must never publish a half-written entry: the key
    either misses or returns the exact stored pickle."""
    key = _key(10)
    plan = FaultPlan(
        seed=1, error=1.0, match=(f"cache.write:{key[:12]}",), in_parent=True
    )
    cache = OutlineCache(tmp_path)
    with armed(plan):
        cache.store_object(key, b"skipped")
    cache.store_object(key, b"landed")
    [path] = list(tmp_path.rglob("*.bin"))
    with open(path, "rb") as fh:
        assert pickle.load(fh)["value"] == b"landed"
