"""Acceptance: one distributed trace across client, server and shards.

A ``shards=4`` build through ``calibro submit`` must yield ONE trace
document in which every shard span carries the request's ``trace_id``
(the document has exactly one) and chains by ``parent_id`` back to the
root ``service.server.request`` span — and the Chrome export of that
trace must validate.  Tracing must not change the output bytes.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time

import pytest

from repro.cli import main
from repro.core.pipeline import CalibroConfig, build_app
from repro.dex.serialize import save_dexfile
from repro.observability import Trace
from repro.workloads import app_spec, generate_app

HEX = set("0123456789abcdef")
GROUPS = 4


@pytest.fixture(scope="module")
def dexfile():
    return generate_app(app_spec("Wechat", scale=0.05)).dexfile


@pytest.fixture(scope="module")
def traced_submit(dexfile, tmp_path_factory):
    """One ``calibro submit`` against a shards=4 server, traced both
    ways; yields the output paths for every test in the module."""
    tmp = tmp_path_factory.mktemp("disttrace")
    dex_json = tmp / "wechat.dex.json"
    save_dexfile(dexfile, str(dex_json))
    sockdir = tempfile.mkdtemp(prefix="calibro-sock-")
    sock = os.path.join(sockdir, "s")
    rc: list[int] = []
    argv = [
        "serve", "--listen", sock, "--groups", str(GROUPS), "--shards", "4",
        "--cache-dir", str(tmp / "cache"), "--json",
    ]
    thread = threading.Thread(target=lambda: rc.append(main(argv)), daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not os.path.exists(sock) and time.monotonic() < deadline:
        time.sleep(0.05)
    assert os.path.exists(sock), "serve --listen never bound its socket"
    oat = tmp / "app.oat"
    trace_path = tmp / "app.trace.json"
    chrome_path = tmp / "app.chrome.json"
    try:
        assert main([
            "submit", sock, str(dex_json), "-o", str(oat),
            "--trace", str(trace_path), "--trace-chrome", str(chrome_path),
            "--json",
        ]) == 0
    finally:
        if thread.is_alive():
            main(["submit", sock, "--shutdown"])
        thread.join(timeout=15.0)
        shutil.rmtree(sockdir, ignore_errors=True)
    assert rc == [0]
    yield {"oat": oat, "trace": trace_path, "chrome": chrome_path}


@pytest.fixture(scope="module")
def trace(traced_submit) -> Trace:
    return Trace.from_dict(
        json.loads(traced_submit["trace"].read_text(encoding="utf-8"))
    )


def _by_id(trace: Trace) -> dict[str, object]:
    return {span.span_id: span for span in trace.walk()}


def test_one_trace_with_one_id_and_intact_identity(trace):
    assert len(trace.meta["trace_id"]) == 32
    spans = list(trace.walk())
    ids = [s.span_id for s in spans]
    assert all(len(i) == 16 and set(i) <= HEX for i in ids)
    assert len(ids) == len(set(ids)), "duplicate span ids"
    known = set(ids)
    assert not [s.name for s in spans if s.parent_id and s.parent_id not in known]
    # Structural nesting and id links agree everywhere.
    for span in spans:
        for child in span.children:
            assert child.parent_id == span.span_id


def test_server_request_parents_under_the_client_span(trace):
    client = trace.find("service.client.build")
    request = trace.find("service.server.request")
    assert client is not None and request is not None
    assert request.parent_id == client.span_id
    assert client.parent_id == ""  # the trace root


def test_every_shard_span_chains_to_the_request_root(trace):
    by_id = _by_id(trace)
    request = trace.find("service.server.request")
    shards = [s for s in trace.walk() if s.name == "service.shard.run"]
    assert len(shards) == 4
    for shard in shards:
        chain = []
        node = shard
        while node.parent_id:
            node = by_id[node.parent_id]
            chain.append(node)
        assert request in chain, f"shard span not under the request root"
        assert chain[-1].name == "service.client.build"
    # The shards really ran in their own processes.
    assert len({s.pid for s in shards}) == 4
    assert all(s.pid and s.pid != os.getpid() for s in shards)


def test_chrome_export_validates(traced_submit, trace):
    doc = json.loads(traced_submit["chrome"].read_text(encoding="utf-8"))
    events = doc["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    # Complete events: one per span, named, non-negative duration.
    assert len(slices) == sum(1 for _ in trace.walk())
    assert all(e["name"] and e["dur"] >= 0.0 for e in slices)
    # Strictly increasing timestamps per (pid, tid) row.
    rows: dict[tuple[int, int], list[float]] = {}
    for event in slices:
        rows.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
    for key, ts_list in rows.items():
        assert all(a < b for a, b in zip(ts_list, ts_list[1:])), key
    # Flow ids pair up across pid boundaries — one arrow into each
    # shard process (client and server share this test's pid, so the
    # client->server hop is not a pid crossing here).
    starts = {e["id"]: e for e in events if e["ph"] == "s"}
    ends = {e["id"]: e for e in events if e["ph"] == "f"}
    assert set(starts) == set(ends) and len(starts) == 4
    shard_ids = {s.span_id for s in trace.walk() if s.name == "service.shard.run"}
    assert set(starts) == shard_ids
    for flow_id, start in starts.items():
        assert start["pid"] != ends[flow_id]["pid"]
    assert {e["pid"] for e in events} == {e["pid"] for e in slices}
    assert doc["otherData"]["trace_id"] == trace.meta["trace_id"]


def test_build_bytes_identical_with_tracing_off(traced_submit, dexfile):
    # No tracer installed here: the plain pipeline is the oracle.
    oracle = build_app(
        dexfile, CalibroConfig.cto_ltbo_plopti(groups=GROUPS)
    ).oat.to_bytes()
    assert traced_submit["oat"].read_bytes() == oracle
