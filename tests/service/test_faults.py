"""The fault-injection suite: drive the recovery ladders, don't trust them.

Every scenario arms a deterministic :class:`FaultPlan` (seed + exact
``site:key`` match list), routes real work through the
:class:`WorkerPool` or :class:`ShardExecutor`, and asserts two things:

1. the ladder engaged — the stats counters show the timeout / failure /
   retry / serial-fallback path the plan scripted;
2. the output is *unchanged* — same results, and for full builds the
   same OAT bytes a fault-free run produces.  Recovery that alters
   output is not recovery.

Fault workers live at module level so the executors can pickle them;
faults themselves fire only in pool/shard children (``in_parent=False``
is the plan default), which is what makes the serial fallback a
guaranteed clean landing.
"""

from __future__ import annotations

import time

import pytest

from repro import observability as obs
from repro.core.errors import ServiceError
from repro.core.pipeline import CalibroConfig, build_app
from repro.service import BuildService, ServiceConfig, ShardExecutor, WorkerPool
from repro.service.faults import FaultPlan, armed, maybe_inject
from repro.workloads import app_spec, generate_app


def _double(value):
    return value * 2


@pytest.fixture(scope="module")
def dexfile():
    return generate_app(app_spec("Wechat", scale=0.05)).dexfile


# -- the plan itself ----------------------------------------------------------


def test_plan_validates_rates():
    with pytest.raises(ServiceError):
        FaultPlan(crash=1.5)
    with pytest.raises(ServiceError):
        FaultPlan(crash=0.6, hang=0.6)
    with pytest.raises(ServiceError):
        FaultPlan(slow=1.0, slow_seconds=-1)


def test_plan_env_round_trip():
    plan = FaultPlan(seed=7, crash=0.25, hang=0.25, match=("pool:0", "shard:1"))
    assert FaultPlan.from_env({"CALIBRO_FAULTS": plan.to_env()}) == plan
    assert FaultPlan.from_env({}) is None
    with pytest.raises(ServiceError):
        FaultPlan.from_env({"CALIBRO_FAULTS": "{not json"})
    with pytest.raises(ServiceError):
        FaultPlan.from_env({"CALIBRO_FAULTS": '{"seed": 1, "typo_rate": 0.5}'})


def test_decide_is_deterministic_and_respects_match():
    plan = FaultPlan(seed=3, crash=1.0, match=("pool:2",))
    assert plan.decide("pool", "2") == "crash"
    assert plan.decide("pool", "2") == "crash"  # replayable
    assert plan.decide("pool", "1") is None  # filtered by match
    assert plan.decide("shard", "2") is None  # site is part of the key
    # Without a match list, rate 1.0 fires for every task.
    assert FaultPlan(seed=3, hang=1.0).decide("pool", "99") == "hang"
    # Rates partition the same draw: the decision changes with the seed,
    # never with the process asking.
    draws = {FaultPlan(seed=s, crash=0.5, hang=0.5).decide("pool", "0") for s in range(8)}
    assert draws <= {"crash", "hang"}


def test_faults_never_fire_in_the_supervising_process():
    # crash=1.0 with no match list would kill whatever process runs it —
    # in_parent=False (the default) keeps it out of this very test.
    with armed(FaultPlan(seed=1, crash=1.0)):
        assert maybe_inject("pool", "0") is None


# -- through the worker pool --------------------------------------------------


def test_slow_fault_delays_but_does_not_degrade():
    plan = FaultPlan(seed=2, slow=1.0, slow_seconds=0.01)
    with armed(plan):
        with WorkerPool(max_workers=2) as pool:
            assert pool.map_groups(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
    assert pool.stats.retries == 0
    assert pool.stats.serial_fallbacks == 0


def test_crash_fault_walks_the_pool_ladder():
    # pool:0 dies on every attempt (same key -> same draw), so task 0
    # must land via the serial fallback; the crash breaks the whole
    # executor, so sibling tasks recover through their own retries.
    plan = FaultPlan(seed=1, crash=1.0, match=("pool:0",))
    with armed(plan):
        with WorkerPool(max_workers=2) as pool:
            assert pool.map_groups(_double, [1, 2, 3]) == [2, 4, 6]
    assert pool.stats.failures >= 1
    assert pool.stats.restarts >= 1
    assert pool.stats.serial_fallbacks >= 1


def test_hang_fault_times_out_and_recovers():
    plan = FaultPlan(seed=1, hang=1.0, hang_seconds=5.0, match=("pool:0",))
    started = time.perf_counter()
    with armed(plan):
        pool = WorkerPool(max_workers=2, timeout=0.5)
        try:
            assert pool.map_groups(_double, [1, 2, 3]) == [2, 4, 6]
        finally:
            pool._restart(terminate=True)
            pool._closed = True
    # Both attempts for pool:0 hung (deterministic draw), then the
    # serial fallback landed it — without ever waiting out a 5 s nap.
    assert pool.stats.timeouts >= 2
    assert pool.stats.serial_fallbacks == 1
    assert pool.stats.restarts >= 2
    assert time.perf_counter() - started < 4.0


# -- through the shard supervisor ---------------------------------------------


def test_crash_fault_walks_the_shard_ladder():
    plan = FaultPlan(seed=1, crash=1.0, match=("shard:0",))
    with armed(plan):
        with ShardExecutor(shards=2) as executor:
            assert executor.map_groups(_double, [1, 2, 3, 4, 5]) == [2, 4, 6, 8, 10]
    assert executor.stats.failures >= 1
    assert executor.stats.retries >= 1
    assert executor.stats.serial_fallbacks >= 1


def test_hang_fault_times_out_a_shard_and_recovers():
    plan = FaultPlan(seed=1, hang=1.0, hang_seconds=5.0, match=("shard:0",))
    started = time.perf_counter()
    with armed(plan):
        executor = ShardExecutor(shards=2, timeout=0.5)
        try:
            assert executor.map_groups(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
        finally:
            executor._restart(terminate=True)
            executor._closed = True
    assert executor.stats.timeouts >= 1
    assert executor.stats.serial_fallbacks >= 1
    assert time.perf_counter() - started < 6.0


def test_group_level_fault_hits_one_chunk_only():
    # group:3 is a *global* index: only the shard owning it degrades.
    plan = FaultPlan(seed=1, crash=1.0, match=("group:3",))
    with armed(plan):
        with ShardExecutor(shards=2) as executor:
            assert executor.map_groups(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
    assert executor.stats.serial_fallbacks >= 1


def test_injected_counter_travels_back_from_shard_children():
    plan = FaultPlan(seed=2, slow=1.0, slow_seconds=0.001)
    with obs.tracing() as tracer:
        with armed(plan):
            with ShardExecutor(shards=2) as executor:
                executor.map_groups(_double, [1, 2, 3, 4])
    # Shard-local tracers counted their own injections; the merge made
    # them visible to the supervising trace.
    assert tracer.counters.get("service.faults.injected", 0) >= 2


# -- faults under a real build: recovery must not change the bytes -----------


def test_build_bytes_survive_pool_crashes(dexfile):
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    clean = build_app(dexfile, config).oat.to_bytes()
    plan = FaultPlan(seed=5, crash=1.0, match=("pool:1",))
    with armed(plan):
        with BuildService(ServiceConfig(max_workers=2)) as service:
            report = service.submit(dexfile, config)
    assert report.build.oat.to_bytes() == clean
    assert service.pool.stats.serial_fallbacks >= 1


def test_build_bytes_survive_shard_crashes(dexfile):
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    clean = build_app(dexfile, config).oat.to_bytes()
    plan = FaultPlan(seed=5, crash=1.0, match=("shard:0",))
    with armed(plan):
        with BuildService(ServiceConfig(shards=2)) as service:
            report = service.submit(dexfile, config)
    assert report.build.oat.to_bytes() == clean
    assert service.shard_executor.stats.serial_fallbacks >= 1
