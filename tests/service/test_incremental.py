"""Incremental delta builds: the byte-identity invariant and the
rebuild model.

The hard guarantee under test: ``BuildService(ServiceConfig(incremental=True))``
produces an OAT image **bit-identical** to a from-scratch
``build_app`` after *any* sequence of method edits, additions and
deletions — across the four paper configs, both mining engines, and
shard widths 1 and 4.  The delta accounting (``GraphDelta``) must
match the documented invalidation rules, corrupt state/cache files
must fall back to rebuilding (never mis-build), and a graph state
from a newer schema must refuse loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.core import CalibroConfig, build_app
from repro.core.errors import CalibroError, ServiceError
from repro.dex.method import DexMethod
from repro.service import BuildService, FaultPlan, ServiceConfig, armed
from repro.service.graph import (
    GRAPH_SCHEMA_VERSION,
    GraphState,
    method_node_key,
)
from repro.workloads import diff_stream

CONFIGS = {
    "baseline": CalibroConfig.baseline,
    "CTO": CalibroConfig.cto,
    "CTO+LTBO": CalibroConfig.cto_ltbo,
    "CTO+LTBO+PlOpti": lambda: CalibroConfig.cto_ltbo_plopti(groups=4),
    "CTO+LTBO+PlOpti+Merge": lambda: CalibroConfig.cto_ltbo_plopti(
        groups=4
    ).with_merging(),
}


def _assert_stream_identity(dexfile, config, service, *, steps=3, seed=11):
    """Drive a mutation stream through ``service`` and compare every
    delta build against a from-scratch reference, byte for byte."""
    versions = [(dexfile, None)] + list(
        diff_stream(dexfile, steps=steps, seed=seed)
    )
    for version, mutation in versions:
        reference = build_app(version, config)
        report = service.submit(version, config, label="stream")
        context = f"{config.name} after {mutation}"
        assert report.build.oat.to_bytes() == reference.oat.to_bytes(), context
        assert report.graph is not None, context
    return report


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_mutation_stream_byte_identity_all_configs(tmp_path, small_app, config_name):
    config = CONFIGS[config_name]()
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        _assert_stream_identity(small_app.dexfile, config, svc)


@pytest.mark.parametrize("engine", ["suffixtree", "suffixarray"])
@pytest.mark.parametrize("shards", [1, 4])
def test_mutation_stream_byte_identity_engines_and_shards(
    tmp_path, small_app, engine, shards
):
    from dataclasses import replace as dc_replace

    config = dc_replace(CalibroConfig.cto_ltbo_plopti(groups=4), engine=engine)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True, shards=shards)) as svc:
        _assert_stream_identity(small_app.dexfile, config, svc, steps=3)


def test_edit_invalidates_one_method_and_one_group(tmp_path, small_app):
    """The documented invalidation rule: partitioning is positional, so
    a pure edit re-keys exactly its own method node and its own group
    node; everything else splices."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    edited, _ = next(iter(diff_stream(small_app.dexfile, steps=1, seed=3,
                                      kinds=("edit",))))
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        first = svc.submit(small_app.dexfile, config, label="app")
        assert first.graph.full_rebuild
        assert first.graph.nodes_reused == 0
        delta = svc.submit(edited, config, label="app").graph
    assert not delta.full_rebuild
    assert delta.methods_rebuilt == 1
    assert delta.groups_rebuilt == 1
    assert delta.methods_reused == delta.methods_total - 1
    assert delta.groups_reused == delta.groups_total - 1


def test_add_and_delete_reshuffle_every_group(tmp_path, small_app):
    """Changing the candidate count reshuffles all partitions: group
    nodes all rebuild, while untouched method nodes still splice."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    added, _ = next(iter(diff_stream(small_app.dexfile, steps=1, seed=5,
                                     kinds=("add",))))
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        svc.submit(small_app.dexfile, config, label="app")
        delta = svc.submit(added, config, label="app").graph
    assert delta.methods_rebuilt == 1  # only the new method compiles
    assert delta.groups_reused == 0
    assert delta.groups_rebuilt == delta.groups_total


def test_unchanged_resubmit_reuses_every_node(tmp_path, small_app):
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        svc.submit(small_app.dexfile, config, label="app")
        report = svc.submit(small_app.dexfile, config, label="app")
    delta = report.graph
    assert delta.nodes_rebuilt == 0
    assert delta.nodes_reused == delta.nodes_total > 0
    assert delta.nodes_added == delta.nodes_removed == 0
    assert report.compile_cached
    assert report.summary()["graph"]["nodes_rebuilt"] == 0


def test_inlining_config_falls_back_to_whole_dex_node(tmp_path, small_app):
    """Per-method reuse is unsound under cross-method inlining, so an
    inlining config compiles through one all-or-nothing dex node."""
    from dataclasses import replace as dc_replace

    config = dc_replace(CalibroConfig.cto_ltbo(), inlining=True)
    reference = build_app(small_app.dexfile, config)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        cold = svc.submit(small_app.dexfile, config, label="app")
        warm = svc.submit(small_app.dexfile, config, label="app")
    assert cold.build.oat.to_bytes() == reference.oat.to_bytes()
    assert warm.build.oat.to_bytes() == reference.oat.to_bytes()
    assert cold.graph.methods_rebuilt == cold.graph.methods_total
    assert warm.graph.methods_reused == warm.graph.methods_total


def test_merge_node_splices_and_rebuilds(tmp_path, small_app):
    """The merge node is one more graph node: a no-change resubmit
    splices its cached plan, any byte movement downstream of outlining
    re-runs discovery."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4).with_merging()
    edited, _ = next(iter(diff_stream(small_app.dexfile, steps=1, seed=3,
                                      kinds=("edit",))))
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        cold = svc.submit(small_app.dexfile, config, label="app")
        warm = svc.submit(small_app.dexfile, config, label="app")
        delta = svc.submit(edited, config, label="app")
    assert cold.graph.merge_total == 1 and cold.graph.merge_rebuilt == 1
    assert warm.graph.merge_total == 1 and warm.graph.merge_reused == 1
    assert warm.graph.nodes_rebuilt == 0
    assert delta.graph.merge_rebuilt == 1  # post-outlining bytes moved


def test_non_merging_configs_have_no_merge_node(tmp_path, small_app):
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        report = svc.submit(small_app.dexfile, config, label="app")
    assert report.graph.merge_total == 0


def test_incremental_persists_across_service_instances(tmp_path, small_app):
    """Graph state and artifacts live next to the cache: a fresh
    service on the same directory delta-builds immediately."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as first:
        first.submit(small_app.dexfile, config, label="app")
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as second:
        report = second.submit(small_app.dexfile, config, label="app")
    assert not report.graph.full_rebuild
    assert report.graph.nodes_rebuilt == 0


def test_memory_only_incremental_service_works(small_app):
    config = CalibroConfig.cto_ltbo()
    reference = build_app(small_app.dexfile, config)
    with BuildService(ServiceConfig(incremental=True)) as svc:  # no cache_dir
        cold = svc.submit(small_app.dexfile, config, label="app")
        warm = svc.submit(small_app.dexfile, config, label="app")
    assert cold.build.oat.to_bytes() == reference.oat.to_bytes()
    assert warm.build.oat.to_bytes() == reference.oat.to_bytes()
    assert warm.graph.nodes_rebuilt == 0


# -- failure semantics --------------------------------------------------------


def _state_files(cache_dir):
    return sorted((cache_dir / "graph").glob("*.json"))


def test_newer_graph_state_schema_raises_calibro_error(tmp_path, small_app):
    config = CalibroConfig.cto_ltbo()
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        svc.submit(small_app.dexfile, config, label="app")
        (path,) = _state_files(tmp_path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["schema_version"] = GRAPH_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(CalibroError, match="newer"):
            svc.submit(small_app.dexfile, config, label="app")


def test_torn_graph_state_falls_back_to_full_rebuild(tmp_path, small_app):
    """A corrupt state file is accounting damage only: the build
    succeeds with identical bytes, flags the corruption, and heals the
    file."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    reference = build_app(small_app.dexfile, config)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        svc.submit(small_app.dexfile, config, label="app")
        (path,) = _state_files(tmp_path)
        path.write_text('{"schema_version": 1, "methods": [truncated', "utf-8")
        report = svc.submit(small_app.dexfile, config, label="app")
    assert report.build.oat.to_bytes() == reference.oat.to_bytes()
    assert report.graph.state_corrupt
    assert report.graph.full_rebuild
    # Healed: the new state parses again.
    (path,) = _state_files(tmp_path)
    assert (
        json.loads(path.read_text(encoding="utf-8"))["schema_version"]
        == GRAPH_SCHEMA_VERSION
    )


def test_structurally_damaged_state_falls_back(tmp_path, small_app):
    config = CalibroConfig.cto_ltbo()
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        svc.submit(small_app.dexfile, config, label="app")
        (path,) = _state_files(tmp_path)
        path.write_text('{"schema_version": 1, "methods": "not-a-dict", "groups": []}',
                        "utf-8")
        report = svc.submit(small_app.dexfile, config, label="app")
    assert report.graph.state_corrupt and report.graph.full_rebuild


def test_corrupted_cache_entries_rebuild_never_misbuild(tmp_path, small_app):
    """Torn/garbage artifact files: every affected node silently
    recomputes — output bytes stay identical to scratch."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    reference = build_app(small_app.dexfile, config)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        svc.submit(small_app.dexfile, config, label="app")
    entries = sorted(tmp_path.glob("??/*.bin"))
    assert entries, "expected on-disk cache entries"
    for i, entry in enumerate(entries):
        if i % 2 == 0:
            entry.write_bytes(b"\x80garbage not a pickle")
        else:
            entry.write_bytes(entry.read_bytes()[: max(1, entry.stat().st_size // 3)])
    # Fresh service: the poisoned disk tier is the only source.
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True)) as svc:
        report = svc.submit(small_app.dexfile, config, label="app")
    assert report.build.oat.to_bytes() == reference.oat.to_bytes()
    assert report.graph.nodes_rebuilt > 0


def test_incremental_delta_survives_injected_pool_crash(tmp_path, small_app):
    """A worker crash mid-delta walks the pool's retry ladder; the
    delta build still lands byte-identical."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    edited, _ = next(iter(diff_stream(small_app.dexfile, steps=1, seed=9,
                                      kinds=("edit",))))
    reference = build_app(edited, config)
    with BuildService(ServiceConfig(cache_dir=tmp_path, incremental=True, max_workers=2)) as svc:
        svc.submit(small_app.dexfile, config, label="app")
        with armed(FaultPlan(seed=1, crash=1.0)):
            report = svc.submit(edited, config, label="app")
    assert report.build.oat.to_bytes() == reference.oat.to_bytes()


# -- the node-key model -------------------------------------------------------


def test_graph_state_round_trips():
    state = GraphState(
        config_key="cfg", methods={"a": "k1"}, groups=["g1", "g2"], dex_key="d"
    )
    assert GraphState.from_dict(state.to_dict()) == state


def test_graph_state_refuses_newer_schema():
    doc = GraphState(config_key="c").to_dict()
    doc["schema_version"] = GRAPH_SCHEMA_VERSION + 1
    with pytest.raises(ServiceError, match="newer"):
        GraphState.from_dict(doc)


@pytest.mark.parametrize("doc", [
    "nope",
    {"schema_version": "one"},
    {"schema_version": 1, "methods": [], "groups": []},
    {"schema_version": 1, "methods": {}, "groups": "x"},
])
def test_graph_state_rejects_damage_as_value_error(doc):
    with pytest.raises((ValueError, TypeError)):
        GraphState.from_dict(doc)


def test_method_node_key_tracks_content_not_position():
    from repro.dex import bytecode as bc

    method = DexMethod(
        name="LApp;->m", num_registers=4, num_inputs=2,
        code=[bc.Const(dst=2, value=7), bc.Return(src=2)],
    )
    k0 = method_node_key(method, cto=True, method_id=0)
    # Position-independent for non-natives: insertions above don't move it.
    assert method_node_key(method, cto=True, method_id=9) == k0
    # Flag- and content-sensitive.
    assert method_node_key(method, cto=False, method_id=0) != k0
    edited = DexMethod(
        name="LApp;->m", num_registers=4, num_inputs=2,
        code=[bc.Const(dst=2, value=8), bc.Return(src=2)],
    )
    assert method_node_key(edited, cto=True, method_id=0) != k0


def test_native_method_node_key_includes_method_id():
    native = DexMethod(name="LApp;->n", num_registers=2, num_inputs=2,
                       is_native=True)
    assert (
        method_node_key(native, cto=True, method_id=0)
        != method_node_key(native, cto=True, method_id=1)
    )
