"""WorkerPool robustness: timeout, retry, restart, serial fallback.

The worker functions live at module level so the executor can pickle
them; the ones that simulate infrastructure failures check
``multiprocessing.parent_process()`` so the misbehaviour (hanging,
dying) only happens in pool *children* — when the pool degrades to its
in-process serial fallback they return normally instead of taking the
test runner down with them.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.core.errors import ServiceError
from repro.service import WorkerPool


def _double(value):
    return value * 2


def _raise_value_error(value):
    raise ValueError(f"deterministic bug for {value}")


def _hang_in_child(value):
    if multiprocessing.parent_process() is not None:
        time.sleep(2.0)
    return value + 100


def _die_in_child(value):
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return value + 200


def test_serial_pool_runs_inline():
    pool = WorkerPool(max_workers=1)
    assert pool.map_groups(_double, [1, 2, 3]) == [2, 4, 6]
    assert pool._executor is None  # no processes were ever forked
    assert pool.stats.tasks == 3


def test_parallel_pool_preserves_order():
    with WorkerPool(max_workers=2) as pool:
        assert pool.map_groups(_double, list(range(8))) == [n * 2 for n in range(8)]
        assert pool.stats.tasks == 8
        assert pool.stats.retries == 0 and pool.stats.serial_fallbacks == 0


def test_deterministic_worker_bug_still_raises():
    with WorkerPool(max_workers=2) as pool:
        with pytest.raises(ValueError, match="deterministic bug"):
            pool.map_groups(_raise_value_error, [1, 2])
        # First attempt failed, the retry failed, and the serial
        # fallback surfaced the bug in-process.
        assert pool.stats.failures >= 1
        assert pool.stats.retries >= 1
        assert pool.stats.serial_fallbacks >= 1


def test_timeout_falls_back_to_serial():
    pool = WorkerPool(max_workers=2, timeout=0.2)
    try:
        assert pool.map_groups(_hang_in_child, [1, 2]) == [101, 102]
        assert pool.stats.timeouts >= 1
        assert pool.stats.serial_fallbacks >= 1
    finally:
        # The hung children are still sleeping; a waiting shutdown would
        # serialize their naps into the test. Drop the executor instead.
        pool._restart()
        pool._closed = True


def test_dead_worker_restarts_pool_and_falls_back():
    with WorkerPool(max_workers=2) as pool:
        assert pool.map_groups(_die_in_child, [1, 2]) == [201, 202]
        assert pool.stats.restarts >= 1
        assert pool.stats.serial_fallbacks >= 1
        # The replacement pool is healthy.
        assert pool.map_groups(_double, [5, 6]) == [10, 12]


def test_closed_pool_rejects_work():
    pool = WorkerPool(max_workers=2)
    pool.close()
    with pytest.raises(ServiceError):
        pool.map_groups(_double, [1])


def test_width_validation():
    with pytest.raises(ServiceError):
        WorkerPool(max_workers=0)
