"""WorkerPool robustness: timeout, retry, restart, serial fallback.

The worker functions live at module level so the executor can pickle
them; the ones that simulate infrastructure failures check
``multiprocessing.parent_process()`` so the misbehaviour (hanging,
dying) only happens in pool *children* — when the pool degrades to its
in-process serial fallback they return normally instead of taking the
test runner down with them.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro import observability as obs
from repro.core.errors import ServiceError
from repro.service import WorkerPool


def _double(value):
    return value * 2


def _sleep_for(value):
    """Sleep ``value`` seconds (anywhere), then return it."""
    time.sleep(value)
    return value


def _hang_on_one(value):
    """Hang in a pool child only for payload 1; instant otherwise."""
    if value == 1 and multiprocessing.parent_process() is not None:
        time.sleep(5.0)
    return value + 100


def _hang_once(payload):
    """Hang in a pool child on the *first* attempt for values 1 and 2.

    The marker file is written before the nap, so after the supervisor
    terminates the hung worker, a retry of the same payload in a fresh
    child returns instantly — the retry succeeds if (and only if) it is
    running on a healthy pool instead of queueing behind zombies.
    """
    value, marker_dir = payload
    if value in (1, 2) and multiprocessing.parent_process() is not None:
        marker = os.path.join(marker_dir, f"ran-{value}")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            time.sleep(5.0)
    return value + 100


def _raise_value_error(value):
    raise ValueError(f"deterministic bug for {value}")


def _hang_in_child(value):
    if multiprocessing.parent_process() is not None:
        time.sleep(2.0)
    return value + 100


def _die_in_child(value):
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return value + 200


def test_serial_pool_runs_inline():
    pool = WorkerPool(max_workers=1)
    assert pool.map_groups(_double, [1, 2, 3]) == [2, 4, 6]
    assert pool._executor is None  # no processes were ever forked
    assert pool.stats.tasks == 3


def test_parallel_pool_preserves_order():
    with WorkerPool(max_workers=2) as pool:
        assert pool.map_groups(_double, list(range(8))) == [n * 2 for n in range(8)]
        assert pool.stats.tasks == 8
        assert pool.stats.retries == 0 and pool.stats.serial_fallbacks == 0


def test_deterministic_worker_bug_still_raises():
    with WorkerPool(max_workers=2) as pool:
        with pytest.raises(ValueError, match="deterministic bug"):
            pool.map_groups(_raise_value_error, [1, 2])
        # First attempt failed, the retry failed, and the serial
        # fallback surfaced the bug in-process.
        assert pool.stats.failures >= 1
        assert pool.stats.retries >= 1
        assert pool.stats.serial_fallbacks >= 1


def test_timeout_falls_back_to_serial():
    pool = WorkerPool(max_workers=2, timeout=0.2)
    try:
        assert pool.map_groups(_hang_in_child, [1, 2]) == [101, 102]
        assert pool.stats.timeouts >= 1
        assert pool.stats.serial_fallbacks >= 1
    finally:
        # The hung children are still sleeping; a waiting shutdown would
        # serialize their naps into the test. Drop the executor instead.
        pool._restart()
        pool._closed = True


def test_dead_worker_restarts_pool_and_falls_back():
    with WorkerPool(max_workers=2) as pool:
        assert pool.map_groups(_die_in_child, [1, 2]) == [201, 202]
        assert pool.stats.restarts >= 1
        assert pool.stats.serial_fallbacks >= 1
        # The replacement pool is healthy.
        assert pool.map_groups(_double, [5, 6]) == [10, 12]


def test_timeout_restarts_executor_so_retry_is_not_starved(tmp_path):
    """The PR-5 timeout-leak regression test.

    ``future.cancel()`` cannot stop a task already running in a worker,
    so before the fix a timeout left the zombie occupying its slot.
    Saturate a 2-wide pool with two first-attempt hangs: the old code's
    retries (and the third payload) queued behind the zombies and timed
    out in cascade (~6 timeouts, every payload degraded to serial
    fallback).  Now the first timeout *replaces* the executor —
    terminating its processes — so the retries run on a healthy pool and
    return instantly (the hang-once markers already exist).
    """
    pool = WorkerPool(max_workers=2, timeout=0.5)
    payloads = [(1, str(tmp_path)), (2, str(tmp_path)), (3, str(tmp_path))]
    started = time.perf_counter()
    try:
        assert pool.map_groups(_hang_once, payloads) == [101, 102, 103]
    finally:
        pool._restart(terminate=True)
        pool._closed = True
    elapsed = time.perf_counter() - started
    # At most one timeout per payload (sibling futures orphaned by a
    # restart can surface as their own timeout) — not the old cascade of
    # six, where every *retry* also starved behind the zombies.
    assert 1 <= pool.stats.timeouts <= 3
    # Every retry SUCCEEDED in the pool: nothing fell back to serial.
    assert pool.stats.serial_fallbacks == 0
    assert pool.stats.restarts >= 1
    # Bounded by the timeout plus overhead — not by any 5 s nap.
    assert elapsed < 4.0


def test_timeout_restart_terminates_hung_workers():
    """The zombie process itself is reaped, not just abandoned: after
    the ladder exhausts (hang, timeout, restart, retry hang, timeout,
    restart, serial fallback) no executor — and no worker process — is
    left holding the batch."""
    pool = WorkerPool(max_workers=2, timeout=0.4)
    try:
        assert pool.map_groups(_hang_on_one, [1, 2]) == [101, 102]
        assert pool._executor is None or not getattr(
            pool._executor, "_processes", {}
        )
        assert pool.stats.timeouts == 2
        assert pool.stats.serial_fallbacks == 1
    finally:
        pool._restart(terminate=True)
        pool._closed = True


def test_wait_histogram_records_per_task_wait():
    """Regression: wait_seconds used one batch-wide ``submitted`` stamp
    observed at *collection* time, so every later future's observation
    included all earlier futures' collect latency (a fast task collected
    after a 0.6 s task appeared to wait >= 0.6 s).  Waits are now
    recorded per task by a done-callback, at completion time."""
    with obs.tracing() as tracer:
        with WorkerPool(max_workers=2) as pool:
            # Task 0 is slow; tasks 1..3 are near-instant and complete
            # on the second worker long before task 0 is collected.
            out = pool.map_groups(_sleep_for, [0.6, 0.0, 0.0, 0.0])
    assert out == [0.6, 0.0, 0.0, 0.0]
    hist = tracer.histograms["service.pool.wait_seconds"]
    assert hist.count == 4
    # Before the fix every observation was >= the slow task's 0.6 s;
    # now only the slow task itself records a wait that long.
    slow_waits = sum(
        count
        for index, count in enumerate(hist.counts)
        if index > 0 and obs.HISTOGRAM_BOUNDS[index - 1] >= 0.5
    )
    assert slow_waits == 1, f"expected 1 slow observation, histogram={hist.to_dict()}"
    assert hist.min < 0.5


def test_closed_pool_rejects_work():
    pool = WorkerPool(max_workers=2)
    pool.close()
    with pytest.raises(ServiceError):
        pool.map_groups(_double, [1])


def test_width_validation():
    with pytest.raises(ServiceError):
        WorkerPool(max_workers=0)
