"""The serve wire protocol: framing, version envelope, validation."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    EVENTS,
    OPS,
    PROTOCOL_VERSION,
    TERMINAL_EVENTS,
    ProtocolError,
    decode_message,
    encode_message,
    validate_request,
    validate_response,
)


def test_encode_stamps_version_and_newline():
    frame = encode_message({"op": "status"})
    assert frame.endswith(b"\n")
    doc = json.loads(frame)
    assert doc["v"] == PROTOCOL_VERSION


def test_encode_respects_explicit_version():
    doc = json.loads(encode_message({"op": "status", "v": 1}))
    assert doc["v"] == 1


def test_round_trip():
    message = {"op": "build", "dex_path": "a.dex.json", "tenant": "t"}
    assert decode_message(encode_message(message))["op"] == "build"


@pytest.mark.parametrize("line", [
    b"not json\n",
    b"[1, 2, 3]\n",          # not an object
    b"{\"op\": \"build\"}\n",  # missing version
    b"{\"v\": \"one\"}\n",     # malformed version
    b"{\"v\": 0}\n",
])
def test_decode_rejects_bad_frames(line):
    with pytest.raises(ProtocolError):
        decode_message(line)


def test_decode_refuses_newer_version():
    line = json.dumps({"op": "status", "v": PROTOCOL_VERSION + 1}).encode()
    with pytest.raises(ProtocolError, match="newer|understands"):
        decode_message(line)


def test_validate_request_ops():
    assert validate_request({"op": "status"}) == "status"
    assert validate_request({"op": "shutdown"}) == "shutdown"
    with pytest.raises(ProtocolError):
        validate_request({"op": "explode"})


def test_build_request_needs_a_dex():
    with pytest.raises(ProtocolError):
        validate_request({"op": "build"})
    assert validate_request({"op": "build", "dex_path": "a"}) == "build"
    assert validate_request({"op": "build", "dex": {"methods": []}}) == "build"


def test_cancel_request_needs_a_build_id():
    with pytest.raises(ProtocolError):
        validate_request({"op": "cancel"})
    assert validate_request({"op": "cancel", "build": "b1"}) == "cancel"


def test_validate_response_events():
    for event in EVENTS:
        assert validate_response({"event": event}) == event
    with pytest.raises(ProtocolError):
        validate_response({"event": "nope"})


def test_terminal_events_are_events():
    assert set(TERMINAL_EVENTS) <= set(EVENTS)
    assert set(OPS).isdisjoint(TERMINAL_EVENTS)
