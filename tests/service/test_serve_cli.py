"""``calibro serve`` / ``calibro build --json`` / error exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import SUMMARY_KEYS, SUMMARY_SCHEMA_VERSION
from repro.dex.serialize import save_dexfile
from repro.oat.oatfile import OatFile
from repro.workloads import app_spec, generate_app


@pytest.fixture(scope="module")
def dex_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "meituan.dex.json"
    save_dexfile(generate_app(app_spec("Meituan", scale=0.12)).dexfile, str(path))
    return path


def test_build_json_emits_the_versioned_summary(tmp_path, dex_json, capsys):
    out = tmp_path / "app.oat"
    assert main(["build", str(dex_json), "-o", str(out), "--groups", "2", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert tuple(doc) == SUMMARY_KEYS
    assert doc["schema_version"] == SUMMARY_SCHEMA_VERSION
    assert doc["config"] == "CTO+LTBO+PlOpti"
    assert out.exists()


def test_serve_builds_and_reuses_the_cache(tmp_path, dex_json, capsys):
    outdir, cache = tmp_path / "out", tmp_path / "cache"
    argv = ["serve", str(dex_json), "-o", str(outdir), "--groups", "2",
            "--cache-dir", str(cache)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "compile cache miss" in cold and "0/2 groups cached" in cold

    oat_bytes = (outdir / "meituan.oat").read_bytes()
    assert OatFile.from_bytes(oat_bytes).text_size > 0

    # A fresh process-equivalent run: everything comes from the disk tier.
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "compile cache hit" in warm and "2/2 groups cached" in warm
    assert (outdir / "meituan.oat").read_bytes() == oat_bytes


def test_serve_json_document(tmp_path, dex_json, capsys):
    assert main(["serve", str(dex_json), "-o", str(tmp_path / "o"),
                 "--groups", "2", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema_version"] == SUMMARY_SCHEMA_VERSION
    [build] = doc["builds"]
    assert build["label"] == "meituan" and build["total_groups"] == 2
    assert doc["service"]["builds"] == 1
    assert "hit_rate" in doc["service"]["cache"]


def test_serve_honours_a_config_file(tmp_path, dex_json, capsys):
    config = tmp_path / "config.json"
    config.write_text(json.dumps({"name": "custom", "cto_enabled": True,
                                  "ltbo_enabled": True, "parallel_groups": 3}))
    assert main(["serve", str(dex_json), "-o", str(tmp_path / "o"),
                 "--config", str(config), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["builds"][0]["config"] == "custom"
    assert doc["builds"][0]["total_groups"] == 3


def test_config_error_maps_to_exit_code_2(tmp_path, dex_json, capsys):
    config = tmp_path / "bad.json"
    config.write_text(json.dumps({"parallel_groups": 0}))
    rc = main(["serve", str(dex_json), "-o", str(tmp_path / "o"),
               "--config", str(config)])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ") and "parallel_groups" in err


def test_unknown_config_key_maps_to_exit_code_2(tmp_path, dex_json, capsys):
    config = tmp_path / "typo.json"
    config.write_text(json.dumps({"grops": 4}))
    assert main(["serve", str(dex_json), "-o", str(tmp_path / "o"),
                 "--config", str(config)]) == 2
    assert "unknown config keys" in capsys.readouterr().err


def test_serve_max_concurrent_defaults_to_bounded_executor_width():
    # The front door's executor is bounded at min(4, cpus) by default —
    # one core serializes, a many-core host still caps at 4 so a single
    # serve process cannot monopolize the machine.
    import os

    from repro.cli import _build_parser

    args = _build_parser().parse_args(["serve", "in.dex", "-o", "out"])
    assert args.max_concurrent == min(4, os.cpu_count() or 1)
    assert args.max_concurrent >= 1


def test_link_error_maps_to_exit_code_4(tmp_path, capsys):
    bogus = tmp_path / "bogus.oat"
    bogus.write_bytes(b"\x00" * 64)
    assert main(["disasm", str(bogus)]) == 4
    assert "bad magic" in capsys.readouterr().err
