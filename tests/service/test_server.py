"""The async serve front door: admission, concurrency, cancellation,
fault surfacing, metrics.

The centerpiece is the deterministic eight-client integration test: a
blocker build pins the executor (a scripted ``slow`` fault at the
``serve:`` site), eight concurrent mixed-tenant clients then submit in
a fixed order — admission happens synchronously in the accept loop, so
who gets ``accepted`` and who gets ``overloaded`` (and for which
reason) is exact — and every accepted build must come back
byte-identical to the same build run directly through
``BuildService.build_many``.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import socket
import tempfile
import threading

import pytest

from repro.core.errors import ConfigError, ServiceError
from repro.core.pipeline import CalibroConfig
from repro.service import (
    AsyncBuildServer,
    BuildRequest,
    BuildService,
    CalibroClient,
    OverloadedError,
    ServiceConfig,
    serve_in_background,
)
from repro.service.faults import FaultPlan, armed
from repro.service.protocol import PROTOCOL_VERSION, BuildFailed
from repro.workloads import app_spec, generate_app

CONFIG = CalibroConfig.cto_ltbo_plopti(groups=4)


@pytest.fixture(scope="module")
def dexfiles():
    """Three distinct tiny apps — enough variety for cross-tenant work."""
    return {
        "a": generate_app(app_spec("Taobao", scale=0.08)).dexfile,
        "b": generate_app(app_spec("Taobao", scale=0.1)).dexfile,
        "c": generate_app(app_spec("Meituan", scale=0.08)).dexfile,
    }


@pytest.fixture(scope="module")
def reference(dexfiles):
    """The same builds run directly through ``build_many`` — the byte
    oracle every served build is held to."""
    with BuildService(ServiceConfig()) as service:
        reports = service.build_many([
            BuildRequest(dexfiles[key], CONFIG, label=key)
            for key in sorted(dexfiles)
        ])
    return {r.label: r.build.oat.to_bytes() for r in reports}


@contextlib.contextmanager
def _front_door(service, **kwargs):
    """A served socket in a short-path tempdir (AF_UNIX ~108-byte cap)."""
    sockdir = tempfile.mkdtemp(prefix="calibro-sock-")
    sock = os.path.join(sockdir, "s")
    server = AsyncBuildServer(service, sock, **kwargs)
    try:
        with serve_in_background(server):
            yield server, sock
    finally:
        shutil.rmtree(sockdir, ignore_errors=True)


# -- the acceptance-criteria integration test ---------------------------------


def test_eight_concurrent_clients_mixed_tenants(dexfiles, reference, tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    metrics = tmp_path / "serve.prom"
    service = BuildService(ServiceConfig(
        ledger=str(ledger), metrics_path=str(metrics),
    ))
    # Submission script: with the blocker pinning the executor and
    # queue_depth=4 / tenant_quota=2, admission order decides exactly:
    #   A:a1 ok, A:a2 ok, A:a3 quota, B:b1 ok (queue now full),
    #   B:b2 full, B:b3 full, C:c1 full, C:c2 full.
    script = [
        ("A", "a1", "a", "accepted", None),
        ("A", "a2", "b", "accepted", None),
        ("A", "a3", "c", "overloaded", "tenant-quota"),
        ("B", "b1", "c", "accepted", None),
        ("B", "b2", "a", "overloaded", "queue-full"),
        ("B", "b3", "b", "overloaded", "queue-full"),
        ("C", "c1", "a", "overloaded", "queue-full"),
        ("C", "c2", "c", "overloaded", "queue-full"),
    ]
    outcomes: list[tuple[str, object]] = [None] * len(script)
    turn = [threading.Event() for _ in script] + [threading.Event()]

    def run_client(index: int, sock: str) -> None:
        tenant, label, app, _, _ = script[index]
        client = CalibroClient(sock, tenant=tenant, timeout=30.0)
        turn[index].wait(timeout=30.0)
        try:
            pending = client.submit(dexfiles[app], CONFIG, label=label)
        except OverloadedError as exc:
            outcomes[index] = ("overloaded", exc.reason)
            turn[index + 1].set()
            return
        turn[index + 1].set()  # next client submits; this one waits on
        result = pending.wait()  # ...its build concurrently
        outcomes[index] = ("accepted", result)

    plan = FaultPlan(seed=7, slow=1.0, slow_seconds=2.5,
                     match=("serve:blocker",), in_parent=True)
    with _front_door(service, queue_depth=4, tenant_quota=2) as (server, sock):
        with armed(plan):
            blocker = CalibroClient(sock, tenant="z", timeout=30.0)
            pending_blocker = blocker.submit(
                dexfiles["a"], CONFIG, label="blocker"
            )
            threads = [
                threading.Thread(target=run_client, args=(i, sock))
                for i in range(len(script))
            ]
            for thread in threads:
                thread.start()
            turn[0].set()
            for thread in threads:
                thread.join(timeout=60.0)
            blocker_result = pending_blocker.wait()
        status = CalibroClient(sock, timeout=30.0).status()
    service.close()

    # Every client got exactly the scripted outcome.
    for index, (tenant, label, app, kind, reason) in enumerate(script):
        got = outcomes[index]
        assert got is not None, f"client {label} never finished"
        assert got[0] == kind, f"client {label}: expected {kind}, got {got}"
        if kind == "overloaded":
            assert got[1] == reason, f"client {label}: wrong refusal reason"

    # Accepted builds are byte-identical to direct build_many output.
    assert blocker_result.oat_bytes == reference["a"]
    for index, (tenant, label, app, kind, _) in enumerate(script):
        if kind == "accepted":
            assert outcomes[index][1].oat_bytes == reference[app], (
                f"served build {label} diverged from build_many"
            )

    # Front-door accounting: 4 accepted (blocker + 3), 5 rejected.
    assert status["accepted"] == 4
    assert status["rejected"] == 5
    assert status["results"] == 4
    assert status["tenants"]["A"] == {
        "inflight": 0, "accepted": 2, "rejected": 1,
    }
    assert status["tenants"]["C"]["rejected"] == 2
    assert status["service"]["builds"] == 4

    # One ledger entry per accepted request, none for rejections.
    entries = [
        json.loads(line)
        for line in ledger.read_text().splitlines() if line
    ]
    assert sorted(e["label"] for e in entries) == ["a1", "a2", "b1", "blocker"]

    # service.server.* metrics flowed into the Prometheus exposition
    # (final flush happens as the serve loop drains).
    text = metrics.read_text()
    assert "calibro_service_server_accepted 4" in text
    assert "calibro_service_server_rejected 5" in text
    assert "calibro_service_server_rejected_quota 1" in text
    assert "calibro_service_server_rejected_queue 4" in text
    assert "calibro_service_server_queue_wait_seconds_count 4" in text
    assert "calibro_service_server_request_seconds_count 4" in text
    assert 'calibro_build_info{' in text and f'protocol="{PROTOCOL_VERSION}"' in text
    assert (
        'calibro_service_server_tenant_requests{outcome="accepted",tenant="A"} 2'
        in text
    )
    assert (
        'calibro_service_server_tenant_requests{outcome="rejected",tenant="C"} 2'
        in text
    )


# -- cancellation -------------------------------------------------------------


def test_cancel_while_queued_never_runs(dexfiles):
    service = BuildService(ServiceConfig())
    plan = FaultPlan(seed=7, slow=1.0, slow_seconds=1.5,
                     match=("serve:blocker",), in_parent=True)
    with _front_door(service, queue_depth=4) as (server, sock):
        with armed(plan):
            client = CalibroClient(sock, timeout=30.0)
            pending_blocker = client.submit(
                dexfiles["a"], CONFIG, label="blocker"
            )
            victim = client.submit(dexfiles["b"], CONFIG, label="victim")
            assert client.cancel(victim.build_id) is True
            with pytest.raises(ServiceError, match="cancelled"):
                victim.wait()
            assert pending_blocker.wait().oat_bytes
            # A finished build is past cancelling.
            assert client.cancel(pending_blocker.build_id) is False
        status = client.status()
    service.close()
    assert status["cancelled"] == 1
    assert status["results"] == 1
    assert status["service"]["builds"] == 1, "cancelled build must never run"


# -- fault surfacing ----------------------------------------------------------


def test_pool_crash_is_absorbed_and_loop_stays_healthy(dexfiles, reference):
    """A crash-injected pool child is the pool ladder's problem: the
    served build still completes (serial fallback) and the accept loop
    keeps serving."""
    service = BuildService(ServiceConfig(max_workers=2))
    with _front_door(service) as (server, sock):
        client = CalibroClient(sock, timeout=60.0)
        with armed(FaultPlan(seed=1, crash=1.0, match=("pool:0",))):
            hurt = client.build(dexfiles["a"], CONFIG, label="a")
        clean = client.build(dexfiles["b"], CONFIG, label="b")
        status = client.status()
    service.close()
    assert hurt.oat_bytes == reference["a"]
    assert clean.oat_bytes == reference["b"]
    assert status["errors"] == 0
    assert status["service"]["pool"]["serial_fallbacks"] >= 1


def test_serve_site_error_becomes_structured_response(dexfiles):
    """The ``error`` fault action fires in the parent at the ``serve:``
    site: the client gets a structured ``error`` event (not a hang, not
    a dropped connection) and the server keeps serving."""
    service = BuildService(ServiceConfig())
    plan = FaultPlan(seed=3, error=1.0, match=("serve:boom",), in_parent=True)
    with _front_door(service) as (server, sock):
        client = CalibroClient(sock, timeout=30.0)
        with armed(plan):
            with pytest.raises(BuildFailed) as exc_info:
                client.build(dexfiles["a"], CONFIG, label="boom")
            assert exc_info.value.code == "build-error"
            assert "injected fault" in str(exc_info.value)
            # Non-matching labels build fine while the plan is armed...
            ok = client.build(dexfiles["a"], CONFIG, label="fine")
        status = client.status()
    service.close()
    assert ok.oat_bytes
    assert status["errors"] == 1
    assert status["results"] == 1
    assert status["service"]["builds"] == 1  # the failed build never ran


# -- wire-level behaviour -----------------------------------------------------


def _raw_exchange(sock_path: str, lines: list[bytes]) -> list[dict]:
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
        raw.settimeout(10.0)
        raw.connect(sock_path)
        fh = raw.makefile("rb")
        responses = []
        for line in lines:
            raw.sendall(line)
            responses.append(json.loads(fh.readline()))
        return responses


def test_newer_protocol_version_is_refused_connection_survives():
    service = BuildService(ServiceConfig())
    with _front_door(service) as (server, sock):
        future = json.dumps(
            {"op": "status", "v": PROTOCOL_VERSION + 1}
        ).encode() + b"\n"
        good = json.dumps({"op": "status", "v": PROTOCOL_VERSION}).encode() + b"\n"
        refused, answered = _raw_exchange(sock, [future, good])
    service.close()
    assert refused["event"] == "error" and refused["code"] == "protocol"
    assert answered["event"] == "status"
    assert answered["stats"]["protocol_version"] == PROTOCOL_VERSION


def test_malformed_frames_get_protocol_errors():
    service = BuildService(ServiceConfig())
    with _front_door(service) as (server, sock):
        responses = _raw_exchange(sock, [
            b"this is not json\n",
            b"[1,2,3]\n",
            json.dumps({"op": "launch", "v": 1}).encode() + b"\n",
            json.dumps({"op": "build", "v": 1}).encode() + b"\n",  # no dex
        ])
    service.close()
    assert all(r["event"] == "error" and r["code"] == "protocol"
               for r in responses)


def test_unknown_cancel_target_is_an_error():
    service = BuildService(ServiceConfig())
    with _front_door(service) as (server, sock):
        client = CalibroClient(sock, timeout=10.0)
        with pytest.raises(ServiceError, match="no such build"):
            client.cancel("b999")
    service.close()


# -- configuration and idle behaviour -----------------------------------------


@pytest.mark.parametrize("kwargs", [
    {"queue_depth": 0},
    {"tenant_quota": 0},
    {"max_concurrent": 0},
    {"flush_interval": 0.0},
    {"flush_interval": -1.0},
])
def test_server_validation(kwargs):
    service = BuildService(ServiceConfig())
    try:
        with pytest.raises(ConfigError):
            AsyncBuildServer(service, "/tmp/never-bound.sock", **kwargs)
    finally:
        service.close()


def test_idle_flush_keeps_exposition_fresh(tmp_path):
    """A serve loop with no traffic still refreshes the metrics file on
    the --flush-interval timer (the carried-forward long-idle gap)."""
    import time

    metrics = tmp_path / "idle.prom"
    service = BuildService(ServiceConfig(metrics_path=str(metrics)))
    with _front_door(service, flush_interval=0.1) as (server, sock):
        deadline = time.monotonic() + 5.0
        while not metrics.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert metrics.exists(), "idle flush never wrote the exposition"
    service.close()
    text = metrics.read_text()
    assert "calibro_build_info" in text
    assert "calibro_service_server_flushes" in text
