"""ServiceConfig: validation, versioned round-trip, legacy kwarg shims.

The service's construction surface is a frozen, validated dataclass
mirroring ``CalibroConfig``; the pre-config keyword surface lives on
behind ``DeprecationWarning`` shims that forward into it.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.errors import ConfigError, ServiceError
from repro.service import (
    SERVICE_CONFIG_SCHEMA_VERSION,
    BuildService,
    ServiceConfig,
)


# -- validation ---------------------------------------------------------------


def test_defaults_are_valid():
    config = ServiceConfig()
    assert config.cache_dir is None
    assert config.incremental is False


@pytest.mark.parametrize("kwargs", [
    {"cache_max_bytes": -1},
    {"cache_memory_entries": 0},
    {"max_workers": 0},
    {"shards": 0},
    {"group_timeout": 0.0},
    {"group_timeout": -1.0},
    {"shard_timeout": 0.0},
])
def test_bad_values_raise_config_error(kwargs):
    with pytest.raises(ConfigError):
        ServiceConfig(**kwargs)


def test_config_is_frozen():
    config = ServiceConfig()
    with pytest.raises(Exception):
        config.shards = 4


def test_path_fields_normalized(tmp_path):
    config = ServiceConfig(cache_dir=tmp_path)
    assert config.cache_dir == str(tmp_path)


# -- versioned round-trip -----------------------------------------------------


def test_round_trip():
    config = ServiceConfig(
        cache_dir="cache", cache_max_bytes=1024, max_workers=2,
        shards=3, ledger="l.jsonl", metrics_path="m.prom", incremental=True,
    )
    doc = config.to_dict()
    assert doc["schema_version"] == SERVICE_CONFIG_SCHEMA_VERSION
    assert ServiceConfig.from_dict(doc) == config


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unknown"):
        ServiceConfig.from_dict({"schema_version": 1, "bogus": True})


def test_from_dict_rejects_newer_schema():
    doc = ServiceConfig().to_dict()
    doc["schema_version"] = SERVICE_CONFIG_SCHEMA_VERSION + 1
    with pytest.raises(ConfigError):
        ServiceConfig.from_dict(doc)


def test_from_dict_rejects_non_dict():
    with pytest.raises(ConfigError):
        ServiceConfig.from_dict(["not", "a", "dict"])


# -- the BuildService construction surface ------------------------------------


def test_service_accepts_config_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with BuildService(ServiceConfig()) as service:
            assert service.config == ServiceConfig()


def test_legacy_kwargs_warn_and_forward(tmp_path):
    with pytest.warns(DeprecationWarning, match="ServiceConfig"):
        service = BuildService(cache_dir=str(tmp_path), max_workers=2)
    try:
        assert service.config.cache_dir == str(tmp_path)
        assert service.config.max_workers == 2
    finally:
        service.close()


def test_config_plus_legacy_kwargs_is_an_error():
    with pytest.raises(ServiceError):
        BuildService(ServiceConfig(), max_workers=2)


def test_unknown_kwargs_raise_type_error():
    with pytest.raises(TypeError):
        BuildService(definitely_not_a_kwarg=1)


def test_legacy_validation_speaks_config_error():
    with pytest.raises(ConfigError):
        BuildService(max_workers=0)


def test_stats_embed_versioned_config(tmp_path):
    with BuildService(ServiceConfig(cache_dir=str(tmp_path))) as service:
        stats = service.stats()
    assert stats["config"]["schema_version"] == SERVICE_CONFIG_SCHEMA_VERSION
    assert stats["config"]["cache_dir"] == str(tmp_path)
