"""Multi-process sharded group builds: determinism, merge order, stats.

The acceptance bar for the shard executor is byte identity: a build
routed through N shard processes must produce exactly the OAT image the
single-process pool (and the plain serial pipeline) produces, under
every paper configuration.  Everything else — supervision stats, memo
hits, merged metrics — is checked on top of that invariant.
"""

from __future__ import annotations

import pytest

from repro import observability as obs
from repro.core.errors import ConfigError, ServiceError
from repro.core.pipeline import CalibroConfig, build_app
from repro.service import BuildService, ServiceConfig, ShardExecutor
from repro.suffixtree.parallel import round_robin_shards
from repro.workloads import app_spec, generate_app


def _double(value):
    return value * 2


def _boom(value):
    raise ValueError(f"deterministic bug for {value}")


@pytest.fixture(scope="module")
def dexfile():
    return generate_app(app_spec("Wechat", scale=0.05)).dexfile


def _configs(dexfile):
    profile = {m.name: 10 for m in dexfile.all_methods()[:8]}
    return [
        CalibroConfig.cto(),
        CalibroConfig.cto_ltbo(),
        CalibroConfig.cto_ltbo_plopti(groups=4),
        CalibroConfig.full(profile, groups=4),
    ]


# -- placement ----------------------------------------------------------------


def test_round_robin_is_deterministic_and_covers():
    assignment = round_robin_shards(10, 3)
    assert assignment == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]
    flat = sorted(i for bucket in assignment for i in bucket)
    assert flat == list(range(10))
    # More shards than items: one bucket per item, no empties.
    assert round_robin_shards(2, 8) == [[0], [1]]
    with pytest.raises(Exception):
        round_robin_shards(4, 0)


# -- the executor as a map_groups collaborator --------------------------------


def test_shard_executor_preserves_payload_order():
    with ShardExecutor(shards=3) as executor:
        assert executor.map_groups(_double, list(range(10))) == [
            n * 2 for n in range(10)
        ]
        assert executor.stats.tasks == 10
        assert executor.stats.dispatches == 3
        assert executor.stats.serial_fallbacks == 0


def test_single_shard_runs_in_process():
    with ShardExecutor(shards=1) as executor:
        assert executor.map_groups(_double, [1, 2, 3]) == [2, 4, 6]
        assert executor._executor is None  # no processes were forked


def test_deterministic_worker_bug_still_raises():
    with ShardExecutor(shards=2) as executor:
        with pytest.raises(ValueError, match="deterministic bug"):
            executor.map_groups(_boom, [1, 2])
        # Both attempts failed in children; the serial fallback
        # surfaced the bug in-process instead of absorbing it.
        assert executor.stats.failures >= 1
        assert executor.stats.serial_fallbacks >= 1


def test_shard_memo_dedupes_identical_payloads():
    with obs.tracing() as tracer:
        with ShardExecutor(shards=2) as executor:
            out = executor.map_groups(_double, [7, 7, 7, 7])
    assert out == [14, 14, 14, 14]
    # 4 payloads round-robin onto 2 shards -> 2 per shard, each shard
    # computes once and memo-serves the duplicate.
    assert executor.stats.memo_hits == 2
    # The shard-local counter merged back into the supervising tracer.
    assert tracer.counters.get("service.shard.memo_hits") == 2


def test_closed_executor_rejects_work():
    executor = ShardExecutor(shards=2)
    executor.close()
    with pytest.raises(ServiceError):
        executor.map_groups(_double, [1])


def test_shard_count_validation():
    with pytest.raises(ServiceError):
        ShardExecutor(shards=0)
    # Service-level validation moved into ServiceConfig.__post_init__,
    # which speaks ConfigError like every other config surface.
    with pytest.raises(ConfigError):
        BuildService(ServiceConfig(shards=0))


# -- byte identity across the four paper configs ------------------------------


def test_sharded_builds_byte_identical_across_configs(dexfile):
    for config in _configs(dexfile):
        plain = build_app(dexfile, config).oat.to_bytes()
        with BuildService(ServiceConfig(shards=2)) as sharded:
            via_shards = sharded.submit(dexfile, config).build.oat.to_bytes()
        with BuildService(ServiceConfig(max_workers=2)) as pooled:
            via_pool = pooled.submit(dexfile, config).build.oat.to_bytes()
        assert via_shards == plain, f"shard mismatch under {config.name}"
        assert via_pool == plain, f"pool mismatch under {config.name}"


def test_shard_width_does_not_change_bytes(dexfile):
    config = CalibroConfig.cto_ltbo_plopti(groups=6)
    images = set()
    for shards in (2, 3, 5):
        with BuildService(ServiceConfig(shards=shards)) as service:
            images.add(service.submit(dexfile, config).build.oat.to_bytes())
    assert len(images) == 1


# -- observability merge ------------------------------------------------------


def test_shard_metrics_feed_the_build_trace(dexfile):
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    with obs.tracing() as tracer:
        with BuildService(ServiceConfig(shards=2)) as service:
            service.submit(dexfile, config)
        trace = tracer.snapshot()
    assert trace.counters["service.shard.tasks"] == 4
    assert trace.counters["service.shard.dispatches"] == 2
    assert trace.gauges["service.shard.count"] == 2
    hist = trace.histograms["service.shard.seconds"]
    assert hist.count == 2 and hist.sum > 0
    # One reconstructed span per healthy shard under the map span.
    map_span = trace.find("service.shard.map")
    assert map_span is not None
    runs = [c for c in map_span.children if c.name == "service.shard.run"]
    assert len(runs) == 2
    assert sorted(r.attrs["shard"] for r in runs) == [0, 1]
    # Shard-local mining metrics merged back: the trace knows more than
    # the in-process pool path could see.
    assert any(name.startswith("mine.") for name in trace.histograms)


def test_service_stats_expose_shard_section(dexfile):
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    with BuildService(ServiceConfig(shards=2)) as service:
        service.submit(dexfile, config)
        stats = service.stats()
    assert stats["shard"]["shards"] == 2
    assert stats["shard"]["tasks"] == 4
    # The in-process pool stayed idle: sharding replaced it.
    assert stats["pool"]["tasks"] == 0
