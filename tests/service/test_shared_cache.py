"""Cross-process cache sharing: the ``shared_cache`` surface end to end.

The tentpole invariant is byte identity: builds whose shard/pool
children read and write the shared disk cache must produce exactly the
OAT image a cache-blind (and a cache-less) build produces — across the
paper configurations, both mining engines, shard widths, and on both
cold and warm caches.  On top of that the suite pins the sharing
itself: a group mined by one executor's children is a disk hit for a
*different* executor (different shard width, different symbol prefixes —
the cross-shard/cross-tenant reuse the shard-local memo cannot see).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro import observability as obs
from repro.compiler.driver import dex2oat
from repro.core.candidates import select_candidates
from repro.core.errors import ConfigError
from repro.core.outline import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_MIN_LENGTH,
    DEFAULT_MIN_SAVED,
)
from repro.core.parallel import _worker
from repro.core.pipeline import CalibroConfig, build_app
from repro.service import (
    BuildService,
    OutlineCache,
    ServiceConfig,
    ShardExecutor,
    SharedCacheSpec,
    SharedCacheWorker,
    WorkerPool,
)
from repro.service.cache import outline_payload_key
from repro.workloads import app_spec, generate_app


@pytest.fixture(scope="module")
def dexfile():
    return generate_app(app_spec("Wechat", scale=0.05)).dexfile


@pytest.fixture(scope="module")
def candidates(small_app):
    result = dex2oat(small_app.dexfile, cto=True)
    return select_candidates(list(result.methods)).candidates


def _payload(candidates, prefix="MethodOutliner$g0", min_length=DEFAULT_MIN_LENGTH):
    return (
        candidates,
        frozenset(),
        min_length,
        DEFAULT_MAX_LENGTH,
        DEFAULT_MIN_SAVED,
        "suffixtree",
        prefix,
    )


def _distinct_payloads(candidates, count, tag):
    """``count`` outline payloads with pairwise-distinct content (each
    takes a different candidate slice) and per-tenant symbol prefixes."""
    return [
        _payload(candidates[: 4 + i], prefix=f"{tag}$g{i}") for i in range(count)
    ]


def _double(value):
    return value * 2


def _result_signature(result):
    return (
        [(m.name, m.code) for m in result.outlined],
        {i: m.code for i, m in result.rewritten.items()},
    )


# -- the config knob ----------------------------------------------------------


def test_shared_cache_resolution_follows_cache_dir(tmp_path):
    assert ServiceConfig().shared_cache_enabled is False
    assert ServiceConfig(cache_dir=tmp_path).shared_cache_enabled is True
    assert (
        ServiceConfig(cache_dir=tmp_path, shared_cache=False).shared_cache_enabled
        is False
    )
    assert (
        ServiceConfig(cache_dir=tmp_path, shared_cache=True).shared_cache_enabled
        is True
    )


def test_shared_cache_true_requires_a_disk_tier():
    with pytest.raises(ConfigError, match="shared_cache=True requires cache_dir"):
        ServiceConfig(shared_cache=True)


def test_shared_cache_must_be_bool_or_none():
    with pytest.raises(ConfigError, match="shared_cache"):
        ServiceConfig(shared_cache="yes")


def test_config_dict_round_trips_shared_cache(tmp_path):
    config = ServiceConfig(cache_dir=tmp_path, shared_cache=False)
    doc = config.to_dict()
    assert doc["shared_cache"] is False
    assert ServiceConfig.from_dict(doc) == config
    # A v1 document (no shared_cache key) still loads: the knob
    # defaults to auto-resolution.
    legacy = {k: v for k, v in doc.items() if k != "shared_cache"}
    legacy["schema_version"] = 1
    assert ServiceConfig.from_dict(legacy).shared_cache is None


# -- the spec and the wrapper -------------------------------------------------


def test_shared_spec_derivation(tmp_path):
    cache = OutlineCache(tmp_path, max_bytes=12345, memory_entries=512)
    spec = cache.shared_spec()
    assert spec == SharedCacheSpec(
        directory=str(tmp_path), max_bytes=12345, memory_entries=64
    )
    # Memory-only caches have nothing cross-process to share.
    assert OutlineCache().shared_spec() is None
    # The spec survives the pickle boundary it exists to cross.
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_spec_open_caches_one_handle_per_role(tmp_path):
    spec = SharedCacheSpec(directory=str(tmp_path))
    assert spec.open("shard") is spec.open("shard")
    assert spec.open("shard") is not spec.open("worker")
    assert spec.open("worker").role == "worker"


def test_outline_payload_key_duck_checks_shape(candidates):
    key, prefix = outline_payload_key(_payload(candidates, prefix="A$g0"))
    assert key == OutlineCache.group_key(_payload(candidates))
    assert prefix == "A$g0"
    # map_groups is generic: non-outline payloads pass through unkeyed.
    assert outline_payload_key(7) == (None, None)
    assert outline_payload_key((1, 2, 3)) == (None, None)


def test_shared_cache_worker_read_through_write_back(tmp_path, candidates):
    spec = SharedCacheSpec(directory=str(tmp_path))
    payload = _payload(candidates, prefix="TenantA$g0")
    wrapped = SharedCacheWorker(_worker, spec)
    assert pickle.loads(pickle.dumps(wrapped)).spec == spec

    cold = wrapped(payload)  # computes and writes back
    assert OutlineCache(tmp_path).disk_bytes() > 0
    # A different tenant's prefix is a hit (rebranded), byte-equal to a
    # fresh computation under that prefix.
    warm_payload = _payload(candidates, prefix="TenantB$g3")
    warm = SharedCacheWorker(_worker, spec)(warm_payload)
    assert _result_signature(warm) == _result_signature(_worker(warm_payload))
    assert _result_signature(cold) == _result_signature(_worker(payload))
    # Non-outline payloads fall straight through to the worker.
    assert SharedCacheWorker(lambda v: v * 2, spec)(21) == 42


# -- shard children share the disk tier ---------------------------------------


def test_shard_children_hit_across_executors(tmp_path, candidates):
    """A group mined by executor A's children (tenant A, width 2) is a
    disk hit inside executor B's children (tenant B, width 3, different
    shard placement) — the reuse the shard-local memo cannot provide."""
    spec = SharedCacheSpec(directory=str(tmp_path))
    cold_payloads = _distinct_payloads(candidates, 6, "TenantA")
    with ShardExecutor(shards=2, cache=spec) as tenant_a:
        cold = tenant_a.map_groups(_worker, cold_payloads)
    assert tenant_a.stats.shared_lookups == 6
    assert tenant_a.stats.shared_hits == 0
    for result, payload in zip(cold, cold_payloads):
        assert _result_signature(result) == _result_signature(_worker(payload))

    warm_payloads = _distinct_payloads(candidates, 6, "TenantB")
    with ShardExecutor(shards=3, cache=spec) as tenant_b:
        warm = tenant_b.map_groups(_worker, warm_payloads)
    assert tenant_b.stats.shared_lookups == 6
    assert tenant_b.stats.shared_hits == 6
    for result, payload in zip(warm, warm_payloads):
        assert _result_signature(result) == _result_signature(_worker(payload))


def test_shard_shared_hits_surface_in_the_trace(tmp_path, candidates):
    spec = SharedCacheSpec(directory=str(tmp_path))
    with ShardExecutor(shards=2, cache=spec) as cold:
        cold.map_groups(_worker, _distinct_payloads(candidates, 4, "A"))
    with obs.tracing() as tracer:
        with ShardExecutor(shards=2, cache=spec) as warm:
            warm.map_groups(_worker, _distinct_payloads(candidates, 4, "B"))
    # Child-side counters merged back into the supervising tracer.
    assert tracer.counters.get("service.shard.shared_hits") == 4
    assert tracer.counters.get("service.cache.shard_hits") == 4
    assert warm.stats.as_dict()["shared_hits"] == 4


def test_executor_without_spec_keeps_the_memo_path():
    with ShardExecutor(shards=2) as executor:
        assert executor.cache_spec is None
        assert executor.map_groups(_double, [7, 7, 7, 7]) == [14] * 4
    assert executor.stats.memo_hits == 2
    assert executor.stats.shared_lookups == 0


# -- pool workers share the disk tier -----------------------------------------


def test_pool_workers_hit_shared_cache(tmp_path, candidates):
    spec = SharedCacheSpec(directory=str(tmp_path))
    with WorkerPool(max_workers=2, cache=spec) as cold_pool:
        cold_pool.map_groups(_worker, _distinct_payloads(candidates, 4, "A"))
    assert OutlineCache(tmp_path).disk_bytes() > 0
    warm_payloads = _distinct_payloads(candidates, 4, "B")
    with obs.tracing() as tracer:
        with WorkerPool(max_workers=2, cache=spec) as warm_pool:
            warm = warm_pool.map_groups(_worker, warm_payloads)
    assert tracer.counters.get("service.cache.worker_hits") == 4
    for result, payload in zip(warm, warm_payloads):
        assert _result_signature(result) == _result_signature(_worker(payload))


def test_pool_passes_non_outline_payloads_through(tmp_path):
    spec = SharedCacheSpec(directory=str(tmp_path))
    with WorkerPool(max_workers=2, cache=spec) as pool:
        assert pool.map_groups(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]


# -- byte identity: shared vs non-shared vs reference -------------------------


def _configs(dexfile):
    profile = {m.name: 10 for m in dexfile.all_methods()[:8]}
    return [
        CalibroConfig.cto(),
        CalibroConfig.cto_ltbo(),
        CalibroConfig.cto_ltbo_plopti(groups=4),
        CalibroConfig.full(profile, groups=4),
    ]


@pytest.mark.parametrize("engine", ["suffixtree", "suffixarray"])
def test_shared_builds_byte_identical_across_matrix(tmp_path, dexfile, engine):
    """Every paper config × shard width {1, 4} × shared on/off, cold and
    warm, against the plain ``build_app`` reference — one wrong byte
    anywhere in the sharing layer fails here."""
    for index, base in enumerate(_configs(dexfile)):
        config = dataclasses.replace(base, engine=engine)
        reference = build_app(dexfile, config).oat.to_bytes()
        for shards in (1, 4):
            for shared in (True, False):
                cache_dir = tmp_path / f"{engine}-{index}-{shards}-{shared}"
                service_config = ServiceConfig(
                    cache_dir=cache_dir, shards=shards, shared_cache=shared
                )
                with BuildService(service_config) as service:
                    cold = service.submit(dexfile, config).build.oat.to_bytes()
                    warm = service.submit(dexfile, config).build.oat.to_bytes()
                label = f"{config.name}/{engine}/shards={shards}/shared={shared}"
                assert cold == reference, f"cold mismatch: {label}"
                assert warm == reference, f"warm mismatch: {label}"


def test_warm_cross_service_build_is_byte_identical(tmp_path, dexfile):
    """Tenant B's *fresh* service (cold memory, cold graph) on tenant
    A's populated directory must byte-match — and must actually hit."""
    config = CalibroConfig.cto_ltbo_plopti(groups=4)
    reference = build_app(dexfile, config).oat.to_bytes()
    with BuildService(ServiceConfig(cache_dir=tmp_path, shards=2)) as tenant_a:
        assert tenant_a.submit(dexfile, config).build.oat.to_bytes() == reference
    with BuildService(ServiceConfig(cache_dir=tmp_path, shards=2)) as tenant_b:
        report = tenant_b.submit(dexfile, config)
        assert report.build.oat.to_bytes() == reference
        stats = tenant_b.stats()
    assert stats["shared_cache"] is True
    # The supervisor's disk pre-lookup served tenant A's entries.
    assert stats["cache"]["hits"] >= 4


def test_stats_report_the_resolved_flag(tmp_path, dexfile):
    with BuildService(ServiceConfig(cache_dir=tmp_path)) as service:
        assert service.stats()["shared_cache"] is True
    with BuildService(
        ServiceConfig(cache_dir=tmp_path, shared_cache=False)
    ) as service:
        assert service.stats()["shared_cache"] is False
    with BuildService(ServiceConfig()) as service:
        assert service.stats()["shared_cache"] is False
