"""``calibro serve --listen`` / ``calibro submit``: the CLI front door.

The serve loop runs ``main([...])`` on a daemon thread (exactly the
deployment shape), submits drive it through ``main`` in the foreground,
and a ``submit --shutdown`` drains it.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time

import pytest

from repro.cli import main
from repro.dex.serialize import save_dexfile
from repro.oat.oatfile import OatFile
from repro.workloads import app_spec, generate_app


@pytest.fixture(scope="module")
def dex_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("submit") / "meituan.dex.json"
    save_dexfile(
        generate_app(app_spec("Meituan", scale=0.1)).dexfile, str(path)
    )
    return path


@pytest.fixture()
def listening(tmp_path):
    """A live ``calibro serve --listen`` on a short-path socket."""
    sockdir = tempfile.mkdtemp(prefix="calibro-sock-")
    sock = os.path.join(sockdir, "s")
    rc: list[int] = []
    argv = [
        "serve", "--listen", sock, "--groups", "2",
        "--cache-dir", str(tmp_path / "cache"),
        "--metrics-file", str(tmp_path / "serve.prom"),
        "--json",
    ]
    thread = threading.Thread(target=lambda: rc.append(main(argv)), daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not os.path.exists(sock) and time.monotonic() < deadline:
        time.sleep(0.05)
    assert os.path.exists(sock), "serve --listen never bound its socket"
    try:
        yield sock
    finally:
        if thread.is_alive():
            main(["submit", sock, "--shutdown"])
        thread.join(timeout=15.0)
        shutil.rmtree(sockdir, ignore_errors=True)
        assert rc == [0]


def test_submit_builds_and_writes_the_oat(listening, dex_json, tmp_path, capsys):
    out = tmp_path / "app.oat"
    argv = ["submit", listening, str(dex_json), "-o", str(out),
            "--tenant", "alice", "--json"]
    capsys.readouterr()  # drop the server's own "listening on ..." line
    assert main(argv) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["build"].startswith("b")
    assert doc["summary"]["label"] == "meituan"  # _input_label strips .dex.json
    oat = OatFile.from_bytes(out.read_bytes())
    assert oat.methods

    assert main(["submit", listening, "--status"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["accepted"] == 1
    assert status["tenants"]["alice"]["accepted"] == 1


def test_submit_without_input_or_control_op_is_an_error(listening, capsys):
    assert main(["submit", listening]) == 2  # ConfigError exit code
    assert "submit needs" in capsys.readouterr().err


def test_submit_cancel_of_unknown_build_fails_cleanly(listening, capsys):
    assert main(["submit", listening, "--cancel", "b999"]) == 5
    assert "no such build" in capsys.readouterr().err


def test_submit_against_dead_socket_is_a_service_error(tmp_path, capsys):
    gone = str(tmp_path / "nobody-home.sock")
    assert main(["submit", gone, "--status"]) == 5
    assert "cannot reach" in capsys.readouterr().err


def test_listen_mode_rejects_positional_inputs(dex_json, capsys):
    rc = main(["serve", str(dex_json), "--listen", "/tmp/unused.sock"])
    assert rc == 2
    assert "--listen" in capsys.readouterr().err


def test_batch_mode_still_needs_inputs_and_outdir(tmp_path, dex_json, capsys):
    assert main(["serve"]) == 2
    assert "batch mode" in capsys.readouterr().err
    assert main(["serve", str(dex_json)]) == 2
    assert "--outdir" in capsys.readouterr().err


def test_top_one_shot_renders_the_front_door(listening, dex_json, tmp_path, capsys):
    out = tmp_path / "app.oat"
    assert main(["submit", listening, str(dex_json), "-o", str(out)]) == 0
    capsys.readouterr()

    assert main(["top", listening]) == 0
    screen = capsys.readouterr().out
    assert f"calibro top — {listening}" in screen
    assert "queued 0/" in screen and "accepted 1" in screen
    assert "no builds in flight" in screen  # the submit already finished

    assert main(["top", listening, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["accepted"] == 1 and doc["active"] == 0
    assert "builds" in doc


def test_top_against_dead_socket_is_a_service_error(tmp_path, capsys):
    gone = str(tmp_path / "nobody-home.sock")
    assert main(["top", gone]) == 5
    assert "cannot reach" in capsys.readouterr().err


def test_top_screen_renders_inflight_builds_with_span_trees():
    from repro.cli import _render_top

    stats = {
        "protocol_version": 1, "queue_depth": 32, "max_concurrent": 2,
        "tenant_quota": 2, "accepted": 3, "results": 2, "rejected": 0,
        "cancelled": 0, "errors": 0, "active": 1, "queued": 0,
        "tenants": {"alice": {"inflight": 1, "accepted": 3}},
        "builds": [{
            "build": "b3", "tenant": "alice", "label": "meituan",
            "state": "running", "phase": "ltbo", "seconds": 1.25,
            "trace_id": "ab" * 16,
            "spans": [{
                "name": "service.server.request", "seconds": 1.2,
                "children": [{"name": "service.build", "seconds": 1.1,
                              "children": []}],
            }],
        }],
    }
    screen = _render_top("/tmp/s", stats)
    assert "alice 1 in-flight (3 accepted)" in screen
    assert "b3  alice  meituan  running  phase=ltbo  1.25s  trace " + "ab" * 16 in screen
    assert "    service.server.request 1.200s" in screen
    assert "      service.build 1.100s" in screen  # nested one level deeper
