"""The paper's Figure 1: the suffix tree of "banana"."""

from __future__ import annotations

from repro.suffixtree.ukkonen import SuffixTree

# b=0, a=1, n=2
BANANA = [0, 1, 2, 1, 2, 1]


def _node_with_label(tree: SuffixTree, label: list[int]) -> int:
    for node in tree.internal_nodes():
        if tree.path_label(node) == label:
            return node
    raise AssertionError(f"no internal node labelled {label}")


def test_na_occurs_twice():
    """Fig. 1 discussion: "na" has two descendant leaves (suffixes
    "na$" and "nana$")."""
    tree = SuffixTree(BANANA)
    node = _node_with_label(tree, [2, 1])
    assert tree.leaf_count(node) == 2
    assert tree.occurrences(node) == [2, 4]


def test_ana_overlapping_occurrences():
    """"ana" appears twice — but overlapping (positions 1 and 3)."""
    tree = SuffixTree(BANANA)
    node = _node_with_label(tree, [1, 2, 1])
    assert tree.occurrences(node) == [1, 3]


def test_non_overlapping_selection_skips_overlap():
    """The "small modification ... to selectively skip" overlapping
    repeats: only one of the two "ana" occurrences is claimable."""
    from repro.suffixtree import select_nonoverlapping

    assert select_nonoverlapping([1, 3], 3) == [1]
    assert select_nonoverlapping([2, 4], 2) == [2, 4]


def test_every_suffix_reachable():
    tree = SuffixTree(BANANA)
    for start in range(len(BANANA)):
        assert tree.contains(BANANA[start:])


def test_counts_match_figure():
    tree = SuffixTree(BANANA)
    assert tree.count_occurrences([1]) == 3        # "a"
    assert tree.count_occurrences([2, 1]) == 2     # "na"
    assert tree.count_occurrences([1, 2, 1]) == 2  # "ana"
    assert tree.count_occurrences([0]) == 1        # "b"
    assert tree.count_occurrences([2, 2]) == 0
