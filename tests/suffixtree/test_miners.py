"""The RepeatMiner protocol and its two engines.

Engine equivalence at build scale lives in
``tests/properties/test_miner_equivalence.py``; this file covers the
protocol surface, the SA-IS construction itself, the canonical ordering
contract, and the deprecation shim.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.suffixtree import (
    DEFAULT_ENGINE,
    ENGINES,
    RepeatMiner,
    SuffixArrayMiner,
    SuffixTreeMiner,
    get_miner,
)
from repro.suffixtree.miners import _kasai, _lcp_intervals, _sais

_SEQ = st.lists(st.integers(0, 5), min_size=1, max_size=40)


class TestRegistry:
    def test_both_engines_registered(self):
        assert set(ENGINES) == {"suffixtree", "suffixarray"}
        assert DEFAULT_ENGINE == "suffixtree"

    def test_get_miner_resolves(self):
        assert get_miner("suffixtree") is SuffixTreeMiner
        assert get_miner("suffixarray") is SuffixArrayMiner

    def test_get_miner_unknown_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown engine 'fmindex'"):
            get_miner("fmindex")

    def test_instances_satisfy_the_protocol(self):
        seq = [1, 2, 1, 2, 3]
        for cls in ENGINES.values():
            miner = cls(seq)
            assert isinstance(miner, RepeatMiner)
            assert miner.name == {SuffixTreeMiner: "suffixtree",
                                  SuffixArrayMiner: "suffixarray"}[cls]
            assert miner.sequence_length == len(seq)
            assert miner.node_count > 0


class TestSuffixArrayConstruction:
    @given(seq=_SEQ)
    @settings(max_examples=200)
    def test_sais_matches_naive_sort(self, seq):
        order = {sym: rank for rank, sym in enumerate(sorted(set(seq)), 1)}
        ranks = [order[sym] for sym in seq] + [0]
        naive = sorted(range(len(ranks)), key=lambda i: ranks[i:])
        assert _sais(ranks, len(order) + 1) == naive

    @given(seq=_SEQ)
    @settings(max_examples=100)
    def test_kasai_matches_direct_comparison(self, seq):
        order = {sym: rank for rank, sym in enumerate(sorted(set(seq)), 1)}
        ranks = [order[sym] for sym in seq] + [0]
        sa = _sais(ranks, len(order) + 1)
        lcp = _kasai(ranks, sa)
        assert lcp[0] == 0
        for i in range(1, len(sa)):
            a, b = ranks[sa[i - 1] :], ranks[sa[i] :]
            h = 0
            while h < min(len(a), len(b)) and a[h] == b[h]:
                h += 1
            assert lcp[i] == h

    @given(seq=st.lists(st.integers(-3, 5), min_size=64, max_size=160))
    @settings(max_examples=100)
    def test_numpy_index_matches_pure_reference(self, seq):
        # The accelerated path (prefix doubling + rank-table LCPs +
        # reduceat minima) must reproduce the pure SA-IS/Kasai index
        # exactly.  Sizes >= 64 force the numpy path when available.
        pytest.importorskip("numpy")
        from repro.suffixtree.miners import _build_index

        order = {sym: rank for rank, sym in enumerate(sorted(set(seq)), 1)}
        ranks = [order[sym] for sym in seq] + [0]
        sa = _sais(ranks, len(order) + 1)
        intervals = _lcp_intervals(sa, _kasai(ranks, sa))
        fast_sa, fast_intervals = _build_index(seq)
        assert fast_sa == sa
        assert sorted(fast_intervals) == sorted(intervals)

    def test_all_equal_input_is_not_quadratic_in_output(self):
        # [3]*n has n-1 branching repeats (lengths 1..n-1); the O(n)
        # min-position carrying must report first == 0 for each.
        miner = SuffixArrayMiner([3] * 50)
        reps = miner.repeats(min_length=1, min_count=2)
        assert [(r.length, r.count, r.first) for r in reps] == [
            (length, 50 - length + 1, 0) for length in range(1, 50)
        ]


class TestOrderingContract:
    @given(seq=_SEQ)
    @settings(max_examples=100)
    def test_both_engines_sort_ascending_length_first(self, seq):
        for cls in ENGINES.values():
            reps = cls(seq).repeats(min_length=1, min_count=2)
            keys = [(r.length, r.first) for r in reps]
            assert keys == sorted(keys)
            assert len(set(keys)) == len(keys)  # (length, first) is unique

    @given(seq=_SEQ)
    @settings(max_examples=100)
    def test_occurrences_sorted_and_real(self, seq):
        for cls in ENGINES.values():
            miner = cls(seq)
            for rep in miner.repeats(min_length=1, min_count=2):
                pos = miner.occurrences(rep)
                assert pos == sorted(pos) and len(pos) == rep.count
                assert pos[0] == rep.first
                want = seq[rep.first : rep.first + rep.length]
                for p in pos:
                    assert seq[p : p + rep.length] == want


class TestDeprecationShim:
    def test_old_names_warn_but_resolve(self):
        import repro.suffixtree as pkg
        from repro.suffixtree.repeats import enumerate_repeats as home_enumerate
        from repro.suffixtree.ukkonen import TERMINAL as home_terminal
        from repro.suffixtree.ukkonen import SuffixTree as home_tree

        for name, home in [
            ("SuffixTree", home_tree),
            ("TERMINAL", home_terminal),
            ("enumerate_repeats", home_enumerate),
        ]:
            with pytest.warns(DeprecationWarning, match=f"repro.suffixtree.{name}"):
                assert getattr(pkg, name) is home

    def test_unknown_attribute_still_raises(self):
        import repro.suffixtree as pkg

        with pytest.raises(AttributeError):
            pkg.NotAThing
