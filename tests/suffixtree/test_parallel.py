"""Group partitioning and the parallel map substrate."""

from __future__ import annotations

import pytest

from repro.suffixtree import available_parallelism, map_over_groups, partition_evenly


def test_partition_even_sizes():
    items = list(range(100))
    parts = partition_evenly(items, 8)
    assert sum(len(p) for p in parts) == 100
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1
    assert sorted(x for p in parts for x in p) == items


def test_partition_deterministic_in_seed():
    items = list(range(40))
    assert partition_evenly(items, 4, seed=7) == partition_evenly(items, 4, seed=7)
    assert partition_evenly(items, 4, seed=7) != partition_evenly(items, 4, seed=8)


def test_partition_is_random_not_contiguous():
    """The paper chose a *random* partition; a contiguous split would
    keep the generation-order locality."""
    items = list(range(64))
    parts = partition_evenly(items, 2, seed=1)
    assert parts[0] != items[:32]


def test_partition_more_groups_than_items():
    parts = partition_evenly([1, 2], 8)
    assert sum(len(p) for p in parts) == 2
    assert all(p for p in parts)


def test_partition_rejects_zero_groups():
    with pytest.raises(ValueError):
        partition_evenly([1], 0)


def test_map_over_groups_serial_path():
    assert map_over_groups(lambda g: sum(g), [[1, 2], [3, 4]], jobs=1) == [3, 7]


def test_map_over_groups_preserves_order():
    groups = [[i] for i in range(10)]
    assert map_over_groups(lambda g: g[0] * 2, groups, jobs=4) == [i * 2 for i in range(10)]


def test_map_over_groups_rejects_bad_jobs():
    with pytest.raises(ValueError):
        map_over_groups(lambda g: g, [[1]], jobs=0)


def test_available_parallelism_positive():
    assert available_parallelism() >= 1
