"""Repeat enumeration and non-overlapping occurrence selection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.suffixtree import select_nonoverlapping
from repro.suffixtree.repeats import enumerate_repeats
from repro.suffixtree.ukkonen import SuffixTree


def test_enumerate_respects_min_length_and_count():
    seq = [1, 2, 3, 1, 2, 3, 1, 2]
    tree = SuffixTree(seq)
    repeats = enumerate_repeats(tree, min_length=2, min_count=2)
    labels = {tuple(tree.path_label(r.node)): r.count for r in repeats}
    # Internal nodes sit at branching points: (1,2) branches (followed by
    # 3 or end), and the maximal repeat (1,2,3,1,2) occurs twice.
    assert labels[(1, 2)] == 3
    assert labels[(1, 2, 3, 1, 2)] == 2
    assert all(len(k) >= 2 for k in labels)


def test_enumerate_max_length_filter():
    seq = [1, 2, 3, 4, 9, 1, 2, 3, 4]
    tree = SuffixTree(seq)
    repeats = enumerate_repeats(tree, min_length=2, min_count=2, max_length=3)
    assert all(r.length <= 3 for r in repeats)


def test_positions_sorted():
    seq = [5, 6, 0, 5, 6, 1, 5, 6]
    tree = SuffixTree(seq)
    (rep,) = [r for r in enumerate_repeats(tree, min_length=2) if r.length == 2]
    assert rep.positions(tree) == [0, 3, 6]


class TestSelectNonoverlapping:
    def test_dense_overlaps(self):
        # aaaa -> positions of "aa" are 0,1,2; max non-overlapping = 2
        assert select_nonoverlapping([0, 1, 2], 2) == [0, 2]

    def test_no_overlap_keeps_all(self):
        assert select_nonoverlapping([0, 5, 10], 3) == [0, 5, 10]

    def test_unsorted_input(self):
        assert select_nonoverlapping([10, 0, 5], 3) == [0, 5, 10]

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            select_nonoverlapping([0], 0)

    @given(
        positions=st.lists(st.integers(0, 200), max_size=40, unique=True),
        length=st.integers(1, 10),
    )
    @settings(max_examples=200)
    def test_selection_is_maximal_and_disjoint(self, positions, length):
        chosen = select_nonoverlapping(positions, length)
        # Disjoint:
        for a, b in zip(chosen, chosen[1:]):
            assert b >= a + length
        # Maximal for equal-length intervals (greedy-by-start is optimal):
        # verify against exhaustive DP on small inputs.
        pos = sorted(positions)
        best = 0
        import bisect

        dp = [0] * (len(pos) + 1)
        for i in range(len(pos) - 1, -1, -1):
            j = bisect.bisect_left(pos, pos[i] + length)
            dp[i] = max(dp[i + 1], 1 + dp[j])
        best = dp[0] if pos else 0
        assert len(chosen) == best
