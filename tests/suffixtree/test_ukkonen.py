"""Ukkonen construction: properties against an exhaustive oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.suffixtree.ukkonen import SuffixTree

_SEQ = st.lists(st.integers(0, 6), min_size=1, max_size=48)


def _exhaustive_counts(seq, min_count=2):
    """Occurrence count of every repeated subsequence, by brute force.

    (The package-level :func:`repro.suffixtree.brute_force_repeats`
    oracle reports only *branching* repeats — the miners' contract;
    this tree test needs counts for every repeated label.)
    """
    seq = tuple(seq)
    n = len(seq)
    counts = {}
    for length in range(1, n + 1):
        seen = {}
        for i in range(n - length + 1):
            sub = seq[i : i + length]
            seen[sub] = seen.get(sub, 0) + 1
        repeated = {sub: c for sub, c in seen.items() if c >= min_count}
        if not repeated:
            break
        counts.update(repeated)
    return counts


@given(seq=_SEQ)
@settings(max_examples=150)
def test_internal_node_counts_match_bruteforce(seq):
    """Every internal node's (label, leaf count) must equal the exact
    occurrence count of that label."""
    tree = SuffixTree(seq)
    oracle = _exhaustive_counts(seq)
    for node in tree.internal_nodes():
        label = tuple(tree.path_label(node))
        assert oracle.get(label) == tree.leaf_count(node)


@given(seq=_SEQ)
@settings(max_examples=150)
def test_every_bruteforce_repeat_found(seq):
    tree = SuffixTree(seq)
    for label, count in _exhaustive_counts(seq).items():
        assert tree.count_occurrences(list(label)) == count


@given(seq=_SEQ)
@settings(max_examples=100)
def test_occurrences_are_real(seq):
    tree = SuffixTree(seq)
    for node in tree.internal_nodes():
        label = tree.path_label(node)
        for pos in tree.occurrences(node):
            assert seq[pos : pos + len(label)] == label


@given(seq=_SEQ)
@settings(max_examples=100)
def test_leaf_count_equals_node_count_invariant(seq):
    """n leaves (one per suffix incl. terminal) and at most n-1 internal
    nodes — the standard suffix-tree size bound."""
    tree = SuffixTree(seq)
    n = len(seq) + 1  # + terminal
    leaves = sum(1 for node in range(tree.node_count) if tree.is_leaf(node))
    assert leaves == n
    internal = tree.node_count - leaves
    assert internal <= n  # root included


@given(seq=_SEQ, probe=st.lists(st.integers(0, 6), min_size=1, max_size=6))
@settings(max_examples=150)
def test_count_occurrences_arbitrary_probe(seq, probe):
    tree = SuffixTree(seq)
    expected = sum(
        1 for i in range(len(seq) - len(probe) + 1) if seq[i : i + len(probe)] == probe
    )
    assert tree.count_occurrences(probe) == expected


def test_single_symbol():
    tree = SuffixTree([5])
    assert tree.sequence_length == 1
    assert tree.count_occurrences([5]) == 1
    assert list(tree.repeated_substrings()) == []


def test_all_same_symbol():
    tree = SuffixTree([3] * 10)
    assert tree.count_occurrences([3]) == 10
    assert tree.count_occurrences([3] * 10) == 1
    repeats = dict()
    for length, count in tree.repeated_substrings():
        repeats[length] = count
    assert repeats[1] == 10 and repeats[9] == 2


def test_empty_pattern_rejected():
    with pytest.raises(ValueError):
        SuffixTree([1, 2]).count_occurrences([])


def test_negative_separators_never_repeat():
    """Unique negative separators (the §3.3.2 device) cannot take part
    in any repeat."""
    seq = [7, 7, -2, 7, 7, -3, 7, 7]
    tree = SuffixTree(seq)
    for node in tree.internal_nodes():
        label = tree.path_label(node)
        assert all(s >= 0 for s in label)
