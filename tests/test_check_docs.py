"""Tier-1 wrapper for scripts/check_docs.py: the documentation may not
rot — no dead relative links, and every non-skipped ```python example
must execute."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_docs_have_no_dead_links_or_broken_examples():
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )
    assert proc.returncode == 0, f"check_docs failed:\n{proc.stdout}{proc.stderr}"
    # The checker actually looked at the docs it claims to guard.
    assert "0 problem(s)" in proc.stdout
    assert "files," in proc.stdout and not proc.stdout.startswith("0 files")
