"""The CI regression gate, run in-process so its contract cannot rot.

The scenarios write small synthetic ledgers: the gate's job is pairing
and verdicts, and :func:`repro.observability.diff.diff_entries` (already
covered by the observability suite) supplies the thresholds.  One
end-to-end scenario builds a real app twice through
:class:`BuildService` to prove service-written ledgers flow through
unmodified.
"""

from __future__ import annotations

import importlib.util
import io
from pathlib import Path

import pytest

from repro.core.pipeline import CalibroConfig
from repro.observability.ledger import BuildLedger, LedgerEntry
from repro.service import BuildService
from repro.workloads import app_spec, generate_app

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "ci_gate.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("ci_gate", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _entry(config="CTO+LTBO", engine="suffix-tree", label="app",
           text_after=1000, wall=1.0):
    return LedgerEntry(
        config=config,
        engine=engine,
        label=label,
        text_size_before=1200,
        text_size_after=text_after,
        wall_seconds=wall,
        timestamp=1.0,
    )


def _write(path, entries):
    ledger = BuildLedger(path)
    for entry in entries:
        ledger.append(entry)
    return str(path)


def test_key_is_config_engine_label(gate):
    entry = _entry(config="CTO", engine="suffix-array", label="wechat")
    assert gate.entry_key(entry) == ("CTO", "suffix-array", "wechat")


def test_clean_ledger_passes(gate, tmp_path, capsys):
    path = _write(tmp_path / "ledger.jsonl", [_entry(wall=1.0), _entry(wall=1.01)])
    assert gate.main([path]) == 0
    out = capsys.readouterr().out
    assert ": ok" in out and "0 regression(s)" in out


def test_size_regression_fails_with_diff_report(gate, tmp_path, capsys):
    path = _write(
        tmp_path / "ledger.jsonl",
        [_entry(text_after=1000), _entry(text_after=1100)],  # +10% text
    )
    assert gate.main([path]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out
    assert "text_size_after" in out and "REGRESSION" in out


def test_wall_time_noise_floor(gate, tmp_path):
    # +20% wall time but only +20 ms absolute: under min-seconds, ok.
    path = _write(tmp_path / "l.jsonl", [_entry(wall=0.1), _entry(wall=0.12)])
    assert gate.main([path]) == 0
    # The same ledger fails once the floor is lowered.
    assert gate.main([path, "--min-seconds", "0.001"]) == 1


def test_keys_are_gated_independently(gate, tmp_path, capsys):
    path = _write(
        tmp_path / "ledger.jsonl",
        [
            _entry(label="a", text_after=1000),
            _entry(label="b", text_after=1000),
            _entry(label="a", text_after=1000),  # a: unchanged
            _entry(label="b", text_after=1150),  # b: regressed
        ],
    )
    assert gate.main([path]) == 1
    out = capsys.readouterr().out
    assert "CTO+LTBO/suffix-tree/a: ok" in out
    assert "CTO+LTBO/suffix-tree/b: REGRESSED" in out


def test_new_keys_never_fail(gate, tmp_path, capsys):
    path = _write(tmp_path / "ledger.jsonl", [_entry(label="first-ever")])
    assert gate.main([path]) == 0
    assert "new (no baseline entry)" in capsys.readouterr().out


def test_separate_baseline_ledger(gate, tmp_path, capsys):
    baseline = _write(tmp_path / "good.jsonl", [_entry(text_after=1000)])
    fresh = _write(tmp_path / "fresh.jsonl", [_entry(text_after=1100)])
    assert gate.main([fresh, "--baseline", baseline]) == 1
    # A generous threshold waves the same delta through.
    assert gate.main([fresh, "--baseline", baseline, "--threshold", "0.5"]) == 0


def test_missing_and_unreadable_ledgers_are_usage_errors(gate, tmp_path):
    assert gate.main([str(tmp_path / "absent.jsonl")]) == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema_version": 999}\n{"config": "x"}\n')
    assert gate.main([str(bad)]) == 2
    fresh = _write(tmp_path / "fresh.jsonl", [_entry()])
    assert gate.main([fresh, "--baseline", str(tmp_path / "gone.jsonl")]) == 2


def test_empty_ledger_is_a_pass(gate, tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert gate.main([str(empty)]) == 0


def test_run_gate_accepts_a_stream(gate, tmp_path):
    path = _write(tmp_path / "l.jsonl", [_entry(), _entry(text_after=1150)])
    buffer = io.StringIO()
    assert gate.run_gate(path, out=buffer) == 1
    assert "REGRESSED" in buffer.getvalue()


def test_service_ledger_flows_through_the_gate(gate, tmp_path):
    """End to end: two identical BuildService builds of a real app are,
    by construction, regression-free."""
    dexfile = generate_app(app_spec("Wechat", scale=0.05)).dexfile
    path = tmp_path / "service.jsonl"
    config = CalibroConfig.cto_ltbo_plopti(groups=2)
    with BuildService(ledger=str(path)) as service:
        service.submit(dexfile, config, label="wechat")
        service.submit(dexfile, config, label="wechat")
    # min-seconds shields the (cached, fast) second build from wall
    # jitter; sizes are deterministic and identical.
    assert gate.main([str(path)]) == 0


def test_warm_build_going_cold_fails_the_gate(gate, tmp_path, capsys):
    """The ``service.cache.hit_rate`` rule: same sizes, same wall time,
    but the fresh entry's cache traffic went from warm to cold — the
    gate reds before wall time would move on a small app."""
    def traffic(hits, misses):
        return LedgerEntry(
            config="CTO+LTBO", engine="suffix-tree", label="app",
            text_size_before=1200, text_size_after=1000, wall_seconds=1.0,
            cache_hits=hits, cache_misses=misses, timestamp=1.0,
        )

    path = _write(tmp_path / "ledger.jsonl", [traffic(9, 1), traffic(1, 9)])
    assert gate.main([path]) == 1
    assert "service.cache.hit_rate" in capsys.readouterr().out
    # Steady warm traffic passes.
    steady = _write(tmp_path / "steady.jsonl", [traffic(9, 1), traffic(9, 1)])
    assert gate.main([steady]) == 0
