"""CLI: the staged workflow end to end, via the in-process entry point."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.oat import OatFile


@pytest.fixture(scope="module")
def workdir(tmp_path_factory) -> Path:
    return tmp_path_factory.mktemp("cli")


@pytest.fixture(scope="module")
def dex_json(workdir) -> Path:
    path = workdir / "app.dex.json"
    assert main(["gen", "Meituan", "--scale", "0.12", "-o", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def package(workdir, dex_json) -> Path:
    path = workdir / "app.pkg"
    assert main(["compile", str(dex_json), "-o", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def outlined(workdir, package) -> Path:
    path = workdir / "app.out.pkg"
    assert main(["outline", str(package), "-o", str(path), "--groups", "2"]) == 0
    return path


@pytest.fixture(scope="module")
def oat_path(workdir, outlined) -> Path:
    path = workdir / "app.oat"
    assert main(["link", str(outlined), "-o", str(path)]) == 0
    return path


def test_gen_writes_valid_dex(dex_json):
    from repro.dex import load_dexfile

    dex = load_dexfile(str(dex_json))
    assert dex.all_methods()


def test_compile_produces_package(package):
    from repro.compiler import CompilationPackage

    pkg = CompilationPackage.load(str(package))
    assert pkg.cto_enabled and pkg.methods


def test_outline_shrinks_text(package, outlined):
    from repro.compiler import CompilationPackage

    before = CompilationPackage.load(str(package))
    after = CompilationPackage.load(str(outlined))
    assert after.text_size < before.text_size
    assert after.annotations["outline"]["outlined_functions"] > 0


def test_link_produces_runnable_oat(oat_path, dex_json):
    oat = OatFile.from_bytes(oat_path.read_bytes())
    assert oat.text_size > 0
    # run an entry point through the CLI
    from repro.dex import load_dexfile

    dex = load_dexfile(str(dex_json))
    entry = next(n for n in dex.method_names() if "entry" in n)
    rc = main([
        "run", str(oat_path), "--entry", entry, "--args", "3,4",
        "--workload", "Meituan", "--scale", "0.12",
    ])
    assert rc == 0


def test_run_matches_interpreter(oat_path, dex_json, capsys):
    from repro.dex import Interpreter, load_dexfile
    from repro.workloads import app_spec, generate_app

    app = generate_app(app_spec("Meituan", 0.12))
    dex = load_dexfile(str(dex_json))
    entry = next(n for n in dex.method_names() if "entry" in n)
    want = Interpreter(
        dex, native_handlers=app.native_handlers, max_steps=100_000_000
    ).call(entry, [3, 4])
    main([
        "run", str(oat_path), "--entry", entry, "--args", "3,4",
        "--workload", "Meituan", "--scale", "0.12",
    ])
    out = capsys.readouterr().out
    assert f"= {want}" in out


def test_profile_and_hot_build(workdir, oat_path, dex_json):
    profile_path = workdir / "profile.json"
    rc = main([
        "profile", str(oat_path), "--workload", "Meituan", "--scale", "0.12",
        "-o", str(profile_path), "--top", "3",
    ])
    assert rc == 0
    profile = json.loads(profile_path.read_text())
    assert profile and all(isinstance(v, int) for v in profile.values())

    full = workdir / "full.oat"
    rc = main([
        "build", str(dex_json), "-o", str(full), "--groups", "2",
        "--hot-profile", str(profile_path),
    ])
    assert rc == 0
    hot_oat = OatFile.from_bytes(full.read_bytes())
    plain_oat = OatFile.from_bytes(oat_path.read_bytes())
    assert hot_oat.text_size >= plain_oat.text_size  # protection costs size


def test_build_engine_flag_reports_in_summary(workdir, dex_json, capsys):
    tree_oat = workdir / "eng_tree.oat"
    array_oat = workdir / "eng_array.oat"
    rc = main([
        "build", str(dex_json), "-o", str(array_oat), "--groups", "2",
        "--engine", "suffixarray", "--json",
    ])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    from repro.core import SUMMARY_SCHEMA_VERSION

    assert summary["schema_version"] == SUMMARY_SCHEMA_VERSION
    assert summary["engine"] == "suffixarray"

    rc = main([
        "build", str(dex_json), "-o", str(tree_oat), "--groups", "2", "--json",
    ])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["engine"] == "suffixtree"
    # The redesign's contract: the engine never changes the bytes.
    assert tree_oat.read_bytes() == array_oat.read_bytes()


def test_analyze_prints_estimate(package, capsys):
    assert main(["analyze", str(package)]) == 0
    out = capsys.readouterr().out
    assert "estimated outlining potential" in out and "%" in out


def test_disasm_single_method(oat_path, capsys):
    oat = OatFile.from_bytes(oat_path.read_bytes())
    name = next(n for n in oat.methods if n.startswith("MethodOutliner"))
    assert main(["disasm", str(oat_path), "--method", name]) == 0
    out = capsys.readouterr().out
    assert "br x30" in out

    assert main(["disasm", str(oat_path), "--method", "nope"]) == 1


def test_trap_exit_code(workdir, dex_json):
    # dividing entry doesn't exist; craft a trap via a bogus entry call
    oat = workdir / "app.oat"
    rc = main(["run", str(oat), "--entry", "LMeituan/Main;->entry0", "--args", ""])
    assert rc in (0, 2)  # runs (natives default to 0) or traps cleanly
