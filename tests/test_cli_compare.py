"""``calibro build --ledger`` / ``compare`` / ``history`` /
``serve --metrics-file`` end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dex.serialize import save_dexfile
from repro.workloads import app_spec, generate_app


@pytest.fixture(scope="module")
def dex_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("compare") / "wechat.dex.json"
    save_dexfile(generate_app(app_spec("Wechat", scale=0.1)).dexfile, str(path))
    return path


def _build(dex_json, tmp_path, name, *extra):
    out = tmp_path / f"{name}.oat"
    assert main(["build", str(dex_json), "-o", str(out), "--groups", "2",
                 *extra]) == 0
    return out


def test_identical_builds_compare_clean(tmp_path, dex_json, capsys):
    ledger = tmp_path / "ledger.jsonl"
    _build(dex_json, tmp_path, "a", "--ledger", str(ledger))
    _build(dex_json, tmp_path, "b", "--ledger", str(ledger))
    assert len(ledger.read_text().splitlines()) == 2
    capsys.readouterr()

    # Size metrics are byte-identical; wall time gets the absolute floor
    # (raised here so a loaded CI host cannot flake the test).
    rc = main(["compare", str(ledger), str(ledger), "--min-seconds", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 regression(s)" in out


def test_synthetic_regression_fails_with_a_readable_report(tmp_path, dex_json, capsys):
    good = tmp_path / "good.jsonl"
    bad = tmp_path / "bad.jsonl"
    _build(dex_json, tmp_path, "good", "--ledger", str(good))
    # The "regressed" candidate: outlining off, so .text grows well past
    # the default 5% threshold — deterministic, no timing involved.
    _build(dex_json, tmp_path, "bad", "--no-ltbo", "--ledger", str(bad))
    capsys.readouterr()

    rc = main(["compare", str(good), str(bad), "--min-seconds", "5"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REGRESSION" in out
    assert "text_size_after" in out and "reduction" in out

    # A threshold above the synthetic gap waves the same pair through.
    assert main(["compare", str(good), str(bad), "--threshold", "2.0",
                 "--min-seconds", "5"]) == 0


def test_compare_two_trace_files(tmp_path, dex_json, capsys):
    trace_a = tmp_path / "a.trace.json"
    trace_b = tmp_path / "b.trace.json"
    _build(dex_json, tmp_path, "ta", "--trace", str(trace_a))
    _build(dex_json, tmp_path, "tb", "--trace", str(trace_b))
    capsys.readouterr()
    rc = main(["compare", str(trace_a), str(trace_b), "--min-seconds", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "compare (trace)" in out
    assert "link.text_bytes" in out  # sizes compared alongside phases


def test_mixed_kinds_exit_with_config_error(tmp_path, dex_json, capsys):
    ledger = tmp_path / "ledger.jsonl"
    trace = tmp_path / "t.trace.json"
    _build(dex_json, tmp_path, "m", "--ledger", str(ledger), "--trace", str(trace))
    capsys.readouterr()
    assert main(["compare", str(trace), str(ledger)]) == 2
    assert "cannot compare" in capsys.readouterr().err


def test_compare_missing_file_exits_with_config_error(tmp_path, capsys):
    assert main(["compare", str(tmp_path / "no.json"),
                 str(tmp_path / "pe.json")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_history_prints_the_trajectory(tmp_path, dex_json, capsys):
    ledger = tmp_path / "ledger.jsonl"
    _build(dex_json, tmp_path, "h1", "--ledger", str(ledger))
    _build(dex_json, tmp_path, "h2", "--ledger", str(ledger))
    capsys.readouterr()

    assert main(["history", str(ledger)]) == 0
    out = capsys.readouterr().out
    assert "CTO+LTBO+PlOpti" in out and "wechat" in out
    assert "reduction" in out  # table header

    assert main(["history", str(ledger), "--config", "nope"]) == 0
    assert "no matching entries" in capsys.readouterr().out


def test_serve_writes_metrics_and_ledger(tmp_path, dex_json, capsys):
    metrics = tmp_path / "metrics.prom"
    ledger = tmp_path / "serve.jsonl"
    assert main(["serve", str(dex_json), "-o", str(tmp_path / "out"),
                 "--groups", "2", "--metrics-file", str(metrics),
                 "--ledger", str(ledger)]) == 0
    out = capsys.readouterr().out
    assert f"metrics -> {metrics}" in out and f"ledger -> {ledger}" in out

    text = metrics.read_text(encoding="utf-8")
    assert "# TYPE calibro_service_builds counter" in text
    assert 'calibro_service_build_seconds_bucket{le="+Inf"} 1' in text

    [line] = ledger.read_text().splitlines()
    entry = json.loads(line)
    assert entry["label"] == "wechat"
    assert entry["text_size_after"] > 0
    assert len(entry["trace_digest"]) == 64  # serve installed a tracer


def test_history_plot_renders_a_sparkline(tmp_path, dex_json, capsys):
    ledger = tmp_path / "ledger.jsonl"
    _build(dex_json, tmp_path, "p1", "--ledger", str(ledger))
    _build(dex_json, tmp_path, "p2", "--ledger", str(ledger))
    _build(dex_json, tmp_path, "p3", "--ledger", str(ledger))
    capsys.readouterr()

    assert main(["history", str(ledger), "--plot"]) == 0
    out = capsys.readouterr().out
    assert "CTO+LTBO+PlOpti / wechat:" in out
    assert any(tick in out for tick in "▁▂▃▄▅▆▇█")
    assert "over 3 builds" in out

    assert main(["history", str(ledger), "--plot", "--config", "nope"]) == 0
    assert "no matching entries" in capsys.readouterr().out


def test_trace_chrome_exports_the_saved_trace(tmp_path, dex_json, capsys):
    trace = tmp_path / "build.trace.json"
    chrome = tmp_path / "build.chrome.json"
    _build(dex_json, tmp_path, "tc", "--trace", str(trace))
    capsys.readouterr()

    assert main(["trace", str(trace), "--chrome", str(chrome)]) == 0
    assert f"chrome trace -> {chrome}" in capsys.readouterr().out
    doc = json.loads(chrome.read_text(encoding="utf-8"))
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in slices}
    assert {"build", "build.dex2oat", "build.link"} <= names
    assert len(doc["otherData"]["trace_id"]) == 32


def test_build_trace_chrome_writes_both_documents(tmp_path, dex_json, capsys):
    trace = tmp_path / "b.trace.json"
    chrome = tmp_path / "b.chrome.json"
    _build(dex_json, tmp_path, "bc", "--trace", str(trace),
           "--trace-chrome", str(chrome))
    out = capsys.readouterr().out
    assert f"chrome trace -> {chrome}" in out

    saved = json.loads(trace.read_text(encoding="utf-8"))
    doc = json.loads(chrome.read_text(encoding="utf-8"))
    # Both exports describe the same trace.
    assert doc["otherData"]["trace_id"] == saved["meta"]["trace_id"]
    span_count = 0
    stack = list(saved["spans"])
    while stack:
        node = stack.pop()
        span_count += 1
        stack.extend(node.get("children", []))
    assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == span_count
