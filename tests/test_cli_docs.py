"""docs/cli.md must document every subcommand and every flag.

The parser is the source of truth: this test introspects the argparse
tree, so adding a subcommand or option without touching the doc fails
here — not in a user's terminal.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import pytest

from repro.cli import _build_parser

DOC = Path(__file__).resolve().parents[1] / "docs" / "cli.md"


def _subparsers() -> dict[str, argparse.ArgumentParser]:
    parser = _build_parser()
    action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return dict(action.choices)


@pytest.fixture(scope="module")
def doc_text() -> str:
    return DOC.read_text(encoding="utf-8")


def test_every_subcommand_has_a_section(doc_text):
    for name in _subparsers():
        assert f"### `calibro {name}`" in doc_text, (
            f"subcommand '{name}' has no section in docs/cli.md"
        )


def test_every_flag_is_documented(doc_text):
    missing: list[str] = []
    for name, sub in _subparsers().items():
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            for opt in action.option_strings:
                if opt.startswith("--") and f"`{opt}`" not in doc_text:
                    missing.append(f"{name} {opt}")
    assert not missing, f"flags absent from docs/cli.md: {missing}"


def test_every_positional_is_documented(doc_text):
    missing: list[str] = []
    for name, sub in _subparsers().items():
        for action in sub._actions:
            if not action.option_strings and f"`{action.dest}`" not in doc_text:
                missing.append(f"{name} {action.dest}")
    assert not missing, f"positionals absent from docs/cli.md: {missing}"


def test_serve_front_door_surface_is_enforced(doc_text):
    """Canaries for the serve/submit surface: if these flags vanish from
    the parser (or their docs), the front-door docs drifted."""
    subs = _subparsers()
    assert "submit" in subs
    serve_flags = {
        opt for a in subs["serve"]._actions for opt in a.option_strings
    }
    assert {"--listen", "--queue-depth", "--tenant-quota",
            "--max-concurrent", "--flush-interval"} <= serve_flags
    submit_flags = {
        opt for a in subs["submit"]._actions for opt in a.option_strings
    }
    assert {"--tenant", "--status", "--cancel", "--shutdown"} <= submit_flags
    for flag in ("--listen", "--queue-depth", "--tenant-quota",
                 "--max-concurrent", "--flush-interval", "--tenant"):
        assert f"`{flag}`" in doc_text


def test_documented_subcommands_exist(doc_text):
    """The doc may not describe subcommands that were removed."""
    import re

    documented = set(re.findall(r"### `calibro ([a-z]+)`", doc_text))
    assert documented == set(_subparsers())
