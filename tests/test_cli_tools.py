"""CLI tooling commands: oatdump, dexdump, trace."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_tools")
    dex = root / "a.dex.json"
    pkg = root / "a.pkg"
    oat = root / "a.oat"
    assert main(["gen", "Fanqie", "--scale", "0.1", "-o", str(dex)]) == 0
    assert main(["compile", str(dex), "-o", str(pkg)]) == 0
    assert main(["link", str(pkg), "-o", str(oat)]) == 0
    return dex, pkg, oat


def test_oatdump_method_table(artifacts, capsys):
    _, _, oat = artifacts
    assert main(["oatdump", str(oat)]) == 0
    out = capsys.readouterr().out
    assert "OAT image: text" in out
    assert "0x100000" in out  # first method at the text base
    assert "__cto$" in out


def test_oatdump_with_stackmaps(artifacts, capsys):
    _, _, oat = artifacts
    assert main(["oatdump", str(oat), "--stackmaps"]) == 0
    out = capsys.readouterr().out
    assert "dex_pc=" in out and "live=" in out


def test_dexdump_lists_methods(artifacts, capsys):
    dex, _, _ = artifacts
    assert main(["dexdump", str(dex)]) == 0
    out = capsys.readouterr().out
    assert ".class LFanqie/" in out
    assert "invoke-static" in out or "return" in out


def test_run_with_trace(artifacts, capsys):
    dex, _, oat = artifacts
    from repro.dex import load_dexfile

    entry = next(n for n in load_dexfile(str(dex)).method_names() if "entry" in n)
    rc = main([
        "run", str(oat), "--entry", entry, "--args", "1,2",
        "--workload", "Fanqie", "--scale", "0.1", "--trace-instrs", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    # the first traced instruction is the frame push at the entry address
    assert "stp x29, x30" in out
    assert out.count("0x") >= 4


def test_compile_with_inline_flag(artifacts, tmp_path, capsys):
    dex, _, _ = artifacts
    out_pkg = tmp_path / "inlined.pkg"
    assert main(["compile", str(dex), "-o", str(out_pkg), "--inline"]) == 0
    from repro.compiler import CompilationPackage

    pkg = CompilationPackage.load(str(out_pkg))
    assert pkg.annotations["inlined_sites"] >= 0
