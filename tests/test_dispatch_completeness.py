"""Meta-invariants tying the ISA, emulator and detector together:
every concrete instruction class must be decodable, executable and
classifiable — adding an instruction without wiring it everywhere is a
bug this test catches."""

from __future__ import annotations

import inspect

import pytest

from repro.isa import instructions as ins


def _concrete_instruction_classes() -> list[type]:
    out = []
    for _, cls in inspect.getmembers(ins, inspect.isclass):
        if issubclass(cls, ins.Instruction) and cls is not ins.Instruction:
            out.append(cls)
    return out


def test_every_instruction_has_emulator_handler():
    from repro.runtime.emulator import _DISPATCH

    missing = [
        cls.__name__
        for cls in _concrete_instruction_classes()
        # Cbnz/Tbnz subclass Cbz/Tbz: dispatch resolves via exact type,
        # so they need their own entries.
        if cls not in _DISPATCH
    ]
    assert not missing, f"no emulator handler for {missing}"


def test_every_instruction_classification_is_consistent():
    for cls in _concrete_instruction_classes():
        assert isinstance(cls.is_terminator, bool)
        assert isinstance(cls.is_call, bool)
        assert isinstance(cls.is_pc_relative, bool)
        assert isinstance(cls.is_indirect_jump, bool)
        # indirect jumps are terminators; calls are not terminators
        if cls.is_indirect_jump:
            assert cls.is_terminator
        if cls.is_call:
            assert not cls.is_terminator


def test_pc_relative_classes_implement_target_protocol():
    samples = {
        ins.B: ins.B(offset=8),
        ins.Bl: ins.Bl(offset=8),
        ins.BCond: ins.BCond(cond=0, offset=8),
        ins.Cbz: ins.Cbz(rt=0, offset=8),
        ins.Cbnz: ins.Cbnz(rt=0, offset=8),
        ins.Tbz: ins.Tbz(rt=0, bit=0, offset=8),
        ins.Tbnz: ins.Tbnz(rt=0, bit=0, offset=8),
        ins.Adr: ins.Adr(rd=0, offset=8),
        ins.Adrp: ins.Adrp(rd=0, page_offset=2),
        ins.LoadLiteral: ins.LoadLiteral(rt=0, offset=8),
    }
    for cls in _concrete_instruction_classes():
        if not cls.is_pc_relative:
            continue
        assert cls in samples, f"add a sample for PC-relative {cls.__name__}"
        instance = samples[cls]
        _ = instance.target_offset
        retargeted = instance.with_target_offset(instance.target_offset)
        assert retargeted == instance


def test_every_instruction_roundtrips_a_sample():
    from repro.isa import decode

    samples = [
        ins.MoveWide(op="movz", rd=1, imm16=2),
        ins.AddSubImm(op="add", rd=1, rn=2, imm12=3),
        ins.AddSubReg(op="sub", rd=1, rn=2, rm=3),
        ins.LogicalReg(op="eor", rd=1, rn=2, rm=3),
        ins.MAdd(rd=1, rn=2, rm=3),
        ins.SDiv(rd=1, rn=2, rm=3),
        ins.ShiftVar(op="lsr", rd=1, rn=2, rm=3),
        ins.CSel(rd=1, rn=2, rm=3, cond=2),
        ins.LoadStoreImm(op="ldr", rt=1, rn=2, offset=8),
        ins.LoadStorePair(op="stp", rt=1, rt2=2, rn=31, offset=16),
        ins.LoadLiteral(rt=1, offset=8),
        ins.Adr(rd=1, offset=4),
        ins.Adrp(rd=1, page_offset=1),
        ins.B(offset=4),
        ins.Bl(offset=4),
        ins.BCond(cond=1, offset=4),
        ins.Cbz(rt=1, offset=4),
        ins.Cbnz(rt=1, offset=4),
        ins.Tbz(rt=1, bit=2, offset=4),
        ins.Tbnz(rt=1, bit=2, offset=4),
        ins.Br(rn=1),
        ins.Blr(rn=1),
        ins.Ret(),
        ins.Nop(),
        ins.Brk(imm16=1),
    ]
    covered = {type(s) for s in samples}
    missing = [c.__name__ for c in _concrete_instruction_classes() if c not in covered]
    assert not missing, f"add round-trip samples for {missing}"
    for sample in samples:
        assert decode(sample.encode()) == sample
