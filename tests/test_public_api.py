"""Public API smoke: every package imports and every __all__ name
resolves — the packaging-break canary."""

from __future__ import annotations

import importlib

import pytest

MODULES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.cli",
    "repro.compiler",
    "repro.core",
    "repro.core.benefit",
    "repro.core.candidates",
    "repro.core.detect",
    "repro.core.errors",
    "repro.core.hotfilter",
    "repro.core.metadata",
    "repro.core.outline",
    "repro.core.parallel",
    "repro.core.patch",
    "repro.core.patterns",
    "repro.core.pipeline",
    "repro.core.staged",
    "repro.dex",
    "repro.dex.pprint",
    "repro.dex.serialize",
    "repro.hgraph",
    "repro.hgraph.passes",
    "repro.isa",
    "repro.oat",
    "repro.profiling",
    "repro.reporting",
    "repro.runtime",
    "repro.service",
    "repro.service.build",
    "repro.service.cache",
    "repro.service.pool",
    "repro.suffixtree",
    "repro.suffixtree.miners",
    "repro.workloads",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_all_resolves(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert getattr(module, symbol, None) is not None, f"{name}.{symbol}"


def test_version():
    import repro

    assert repro.__version__
