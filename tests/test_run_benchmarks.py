"""Smoke test for ``scripts/run_benchmarks.py`` — the trajectory file
format must not rot between the (rare) full benchmark runs."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "run_benchmarks.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("run_benchmarks", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_two_runs_append_two_points(bench, tmp_path, capsys):
    out = tmp_path / "BENCH_sizes.json"
    argv = ["--scale", "0.05", "--apps", "Wechat", "--groups", "2",
            "--out", str(out)]
    assert bench.main(argv) == 0
    assert bench.main(argv) == 0
    assert "avg reduction" in capsys.readouterr().out

    points = json.loads(out.read_text(encoding="utf-8"))
    assert isinstance(points, list) and len(points) == 2
    for point in points:
        assert point["schema_version"] == bench.POINT_SCHEMA_VERSION
        assert point["git_sha"]  # short sha, or "unknown" outside git
        assert point["timestamp"] > 0 and "T" in point["date"]
        assert point["apps"] == ["Wechat"]
        assert point["baseline"]["per_app"]["Wechat"]["text_size"] > 0
        for key in bench.CONFIG_KEYS:
            stack = point["configs"][key]
            assert 0.0 < stack["avg_reduction"] < 1.0
            assert stack["avg_build_seconds"] > 0.0
            assert stack["per_app"]["Wechat"]["text_size"] > 0
    # Trajectory points accumulate in order.
    assert points[0]["timestamp"] <= points[1]["timestamp"]


def test_append_point_refuses_a_non_array_file(bench, tmp_path):
    out = tmp_path / "BENCH_sizes.json"
    out.write_text('{"not": "an array"}')
    with pytest.raises(SystemExit, match="array"):
        bench.append_point(out, {"schema_version": 1})


def test_git_sha_shape(bench):
    sha = bench.git_sha()
    assert sha == "unknown" or (4 <= len(sha) <= 40 and sha.isalnum())
