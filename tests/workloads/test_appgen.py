"""Workload generator: structure, determinism, and the populations the
evaluation depends on."""

from __future__ import annotations

import pytest

from repro.dex import Interpreter, verify_dexfile
from repro.workloads import (
    APP_NAMES,
    AppSpec,
    PAPER_BASELINE_MB,
    app_spec,
    generate_app,
    generate_suite,
)


def test_deterministic_generation():
    a = generate_app(app_spec("Toutiao", 0.1))
    b = generate_app(app_spec("Toutiao", 0.1))
    assert a.dexfile.method_names() == b.dexfile.method_names()
    assert [m.code for m in a.dexfile.all_methods()] == [
        m.code for m in b.dexfile.all_methods()
    ]
    assert a.ui_script.calls == b.ui_script.calls


def test_apps_differ_by_seed():
    a = generate_app(app_spec("Toutiao", 0.1))
    b = generate_app(app_spec("Wechat", 0.1))
    assert [m.code for m in a.dexfile.all_methods()[:20]] != [
        m.code for m in b.dexfile.all_methods()[:20]
    ]


def test_generated_apps_verify(small_app):
    verify_dexfile(small_app.dexfile)


def test_population_mix(small_app):
    methods = small_app.dexfile.all_methods()
    natives = [m for m in methods if m.is_native]
    switches = [m for m in methods if m.has_switch]
    assert natives, "native methods required (exclusion population)"
    assert switches, "switch methods required (indirect-jump population)"
    assert all(m.name in small_app.native_handlers for m in natives)


def test_relative_sizes_follow_paper():
    """Method counts track the paper's baseline OAT sizes (Table 4)."""
    specs = {name: app_spec(name) for name in APP_NAMES}
    assert specs["Kuaishou"].num_methods == max(s.num_methods for s in specs.values())
    assert specs["Taobao"].num_methods == min(s.num_methods for s in specs.values())
    ratio = specs["Kuaishou"].num_methods / specs["Taobao"].num_methods
    paper_ratio = PAPER_BASELINE_MB["Kuaishou"] / PAPER_BASELINE_MB["Taobao"]
    assert abs(ratio - paper_ratio) < 0.1


def test_scaled_spec():
    s = app_spec("Wechat", 0.5)
    assert s.num_methods == pytest.approx(app_spec("Wechat").num_methods * 0.5, abs=1)
    tiny = AppSpec(name="x", seed=1, num_methods=100).scaled(0.01)
    assert tiny.num_methods == 20  # floor


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        app_spec("Instagram")


def test_ui_script_runs_in_interpreter(small_app):
    interp = Interpreter(
        small_app.dexfile, native_handlers=small_app.native_handlers,
        max_steps=100_000_000,
    )
    for method, args in small_app.ui_script.iterate():
        interp.call(method, list(args))  # must not raise


def test_entry_points_exist(small_app):
    names = set(small_app.dexfile.method_names())
    assert small_app.entry_points
    assert set(small_app.entry_points) <= names


def test_suite_generation():
    suite = generate_suite(scale=0.05, names=("Taobao", "Wechat"))
    assert [app.name for app in suite] == ["Taobao", "Wechat"]
