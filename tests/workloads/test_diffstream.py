"""Diff-stream generator: determinism, blast radius and edge cases."""

from __future__ import annotations

import pytest

from repro.dex import bytecode as bc
from repro.dex.builder import MethodBuilder
from repro.dex.method import DexClass, DexFile, DexMethod
from repro.workloads import MUTATION_KINDS, diff_stream, mutate_app


def _method_names(dexfile):
    return [m.name for m in dexfile.all_methods()]


def test_mutate_is_deterministic_and_pure(small_app):
    before = _method_names(small_app.dexfile)
    a, ma = mutate_app(small_app.dexfile, seed=42)
    b, mb = mutate_app(small_app.dexfile, seed=42)
    assert ma == mb
    assert [m.code for m in a.all_methods()] == [m.code for m in b.all_methods()]
    # The input was deep-copied, not touched.
    assert _method_names(small_app.dexfile) == before


def test_edit_touches_exactly_one_method(small_app):
    mutated, mutation = mutate_app(small_app.dexfile, seed=7, kind="edit")
    assert mutation.kind == "edit"
    changed = [
        m.name
        for m, n in zip(mutated.all_methods(), small_app.dexfile.all_methods())
        if m.code != n.code
    ]
    assert changed == [mutation.method]
    assert _method_names(mutated) == _method_names(small_app.dexfile)


def test_add_appends_one_method(small_app):
    mutated, mutation = mutate_app(small_app.dexfile, seed=8, kind="add")
    assert mutation.kind == "add"
    assert "diffAdded" in mutation.method
    before, after = set(_method_names(small_app.dexfile)), set(_method_names(mutated))
    assert after - before == {mutation.method}
    assert before <= after


def test_delete_removes_an_uninvoked_method(small_app):
    mutated, mutation = mutate_app(small_app.dexfile, seed=9, kind="delete")
    before, after = set(_method_names(small_app.dexfile)), set(_method_names(mutated))
    assert before - after == {mutation.method}
    invoked = set()
    for m in small_app.dexfile.all_methods():
        invoked.update(m.invoked_methods)
    assert mutation.method not in invoked


def test_protected_methods_survive(small_app):
    protected = frozenset(_method_names(small_app.dexfile))
    # Every edit/delete target is protected -> no eligible target.
    with pytest.raises(ValueError):
        mutate_app(small_app.dexfile, seed=1, kind="edit", protected=protected)
    with pytest.raises(ValueError):
        mutate_app(small_app.dexfile, seed=1, kind="delete", protected=protected)
    # Adds still work: nothing existing is touched.
    mutated, mutation = mutate_app(
        small_app.dexfile, seed=1, kind="add", protected=protected
    )
    assert protected <= set(_method_names(mutated))


def test_unknown_kind_rejected(small_app):
    with pytest.raises(ValueError, match="unknown mutation kind"):
        mutate_app(small_app.dexfile, kind="rename")
    with pytest.raises(ValueError, match="unknown mutation kind"):
        list(diff_stream(small_app.dexfile, steps=1, kinds=("edit", "rename")))


def test_no_eligible_target_is_a_value_error():
    main = MethodBuilder("LOnly;->main", num_inputs=0, num_registers=2)
    main.const(0, 1)
    main.ret(0)
    helper = DexMethod(
        name="LOnly;->helper", num_registers=2, num_inputs=1,
        code=[bc.Return(src=0)],
    )
    app = DexFile(classes=[DexClass(name="LOnly;", methods=[main.build(), helper])])
    # helper carries no const -> only main is editable; protect it.
    with pytest.raises(ValueError, match="no editable"):
        mutate_app(app, kind="edit", protected=frozenset({"LOnly;->main"}))


def test_stream_is_cumulative_and_cycles_kinds(small_app):
    versions = list(diff_stream(small_app.dexfile, steps=6, seed=3))
    assert [m.kind for _, m in versions] == list(MUTATION_KINDS) * 2
    # Cumulative: the add from step 2 is still present at step 6.
    added = versions[1][1].method
    assert added in _method_names(versions[-1][0])
    # Deterministic end to end.
    replay = list(diff_stream(small_app.dexfile, steps=6, seed=3))
    assert [m for _, m in replay] == [m for _, m in versions]


def test_stream_rejects_negative_steps(small_app):
    with pytest.raises(ValueError, match="steps"):
        list(diff_stream(small_app.dexfile, steps=-1))
