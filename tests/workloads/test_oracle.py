"""The differential oracle API."""

from __future__ import annotations

import dataclasses

from repro.cli import main
from repro.core import CalibroConfig
from repro.workloads import app_spec, generate_app, verify_app


def test_all_default_configs_pass(small_app):
    results = verify_app(small_app, method_sample=10, seed=1)
    assert len(results) == 5  # baseline, CTO, +LTBO, +PlOpti, +Merge
    for result in results:
        assert result.ok, result.mismatches[:3]
        assert result.calls_checked > 10


def test_trap_outcomes_compared_not_just_values():
    """Probing with random args hits throwing paths; the oracle must
    treat matching trap kinds as agreement."""
    app = generate_app(app_spec("Taobao", 0.1))
    results = verify_app(
        app, configs=[CalibroConfig.cto_ltbo()], method_sample=60, seed=7
    )
    (result,) = results
    assert result.ok


def test_custom_config_list():
    app = generate_app(app_spec("Toutiao", 0.08))
    cfg = dataclasses.replace(CalibroConfig.cto_ltbo(), inlining=True)
    (result,) = verify_app(app, configs=[cfg])
    assert result.ok and result.config_name == "CTO+LTBO"


def test_mismatch_rendering():
    from repro.workloads import Mismatch

    m = Mismatch(method="LX;->m", args=(1, 2), expected=3, actual=4)
    assert "LX;->m(1, 2)" in str(m)
    assert "interpreter=3" in str(m) and "emulator=4" in str(m)


def test_cli_verify_passes(capsys):
    rc = main(["verify", "--workload", "Fanqie", "--scale", "0.08", "--samples", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 5 and "FAIL" not in out
